
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/benchlib/experiment.cc" "src/CMakeFiles/mbc.dir/benchlib/experiment.cc.o" "gcc" "src/CMakeFiles/mbc.dir/benchlib/experiment.cc.o.d"
  "/root/repo/src/benchlib/table.cc" "src/CMakeFiles/mbc.dir/benchlib/table.cc.o" "gcc" "src/CMakeFiles/mbc.dir/benchlib/table.cc.o.d"
  "/root/repo/src/common/bitset.cc" "src/CMakeFiles/mbc.dir/common/bitset.cc.o" "gcc" "src/CMakeFiles/mbc.dir/common/bitset.cc.o.d"
  "/root/repo/src/common/env.cc" "src/CMakeFiles/mbc.dir/common/env.cc.o" "gcc" "src/CMakeFiles/mbc.dir/common/env.cc.o.d"
  "/root/repo/src/common/logging.cc" "src/CMakeFiles/mbc.dir/common/logging.cc.o" "gcc" "src/CMakeFiles/mbc.dir/common/logging.cc.o.d"
  "/root/repo/src/common/memory.cc" "src/CMakeFiles/mbc.dir/common/memory.cc.o" "gcc" "src/CMakeFiles/mbc.dir/common/memory.cc.o.d"
  "/root/repo/src/common/status.cc" "src/CMakeFiles/mbc.dir/common/status.cc.o" "gcc" "src/CMakeFiles/mbc.dir/common/status.cc.o.d"
  "/root/repo/src/core/balanced_clique.cc" "src/CMakeFiles/mbc.dir/core/balanced_clique.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/balanced_clique.cc.o.d"
  "/root/repo/src/core/brute_force.cc" "src/CMakeFiles/mbc.dir/core/brute_force.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/brute_force.cc.o.d"
  "/root/repo/src/core/mbc_adv.cc" "src/CMakeFiles/mbc.dir/core/mbc_adv.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mbc_adv.cc.o.d"
  "/root/repo/src/core/mbc_baseline.cc" "src/CMakeFiles/mbc.dir/core/mbc_baseline.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mbc_baseline.cc.o.d"
  "/root/repo/src/core/mbc_enum.cc" "src/CMakeFiles/mbc.dir/core/mbc_enum.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mbc_enum.cc.o.d"
  "/root/repo/src/core/mbc_heu.cc" "src/CMakeFiles/mbc.dir/core/mbc_heu.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mbc_heu.cc.o.d"
  "/root/repo/src/core/mbc_parallel.cc" "src/CMakeFiles/mbc.dir/core/mbc_parallel.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mbc_parallel.cc.o.d"
  "/root/repo/src/core/mbc_star.cc" "src/CMakeFiles/mbc.dir/core/mbc_star.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mbc_star.cc.o.d"
  "/root/repo/src/core/mdc_solver.cc" "src/CMakeFiles/mbc.dir/core/mdc_solver.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/mdc_solver.cc.o.d"
  "/root/repo/src/core/reductions.cc" "src/CMakeFiles/mbc.dir/core/reductions.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/reductions.cc.o.d"
  "/root/repo/src/core/verify.cc" "src/CMakeFiles/mbc.dir/core/verify.cc.o" "gcc" "src/CMakeFiles/mbc.dir/core/verify.cc.o.d"
  "/root/repo/src/datasets/generators.cc" "src/CMakeFiles/mbc.dir/datasets/generators.cc.o" "gcc" "src/CMakeFiles/mbc.dir/datasets/generators.cc.o.d"
  "/root/repo/src/datasets/rating_converter.cc" "src/CMakeFiles/mbc.dir/datasets/rating_converter.cc.o" "gcc" "src/CMakeFiles/mbc.dir/datasets/rating_converter.cc.o.d"
  "/root/repo/src/datasets/registry.cc" "src/CMakeFiles/mbc.dir/datasets/registry.cc.o" "gcc" "src/CMakeFiles/mbc.dir/datasets/registry.cc.o.d"
  "/root/repo/src/dichromatic/dichromatic_graph.cc" "src/CMakeFiles/mbc.dir/dichromatic/dichromatic_graph.cc.o" "gcc" "src/CMakeFiles/mbc.dir/dichromatic/dichromatic_graph.cc.o.d"
  "/root/repo/src/dichromatic/network_builder.cc" "src/CMakeFiles/mbc.dir/dichromatic/network_builder.cc.o" "gcc" "src/CMakeFiles/mbc.dir/dichromatic/network_builder.cc.o.d"
  "/root/repo/src/dichromatic/reductions.cc" "src/CMakeFiles/mbc.dir/dichromatic/reductions.cc.o" "gcc" "src/CMakeFiles/mbc.dir/dichromatic/reductions.cc.o.d"
  "/root/repo/src/dichromatic/signed_ego.cc" "src/CMakeFiles/mbc.dir/dichromatic/signed_ego.cc.o" "gcc" "src/CMakeFiles/mbc.dir/dichromatic/signed_ego.cc.o.d"
  "/root/repo/src/gmbc/gmbc.cc" "src/CMakeFiles/mbc.dir/gmbc/gmbc.cc.o" "gcc" "src/CMakeFiles/mbc.dir/gmbc/gmbc.cc.o.d"
  "/root/repo/src/graph/balance.cc" "src/CMakeFiles/mbc.dir/graph/balance.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/balance.cc.o.d"
  "/root/repo/src/graph/binary_io.cc" "src/CMakeFiles/mbc.dir/graph/binary_io.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/binary_io.cc.o.d"
  "/root/repo/src/graph/coloring.cc" "src/CMakeFiles/mbc.dir/graph/coloring.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/coloring.cc.o.d"
  "/root/repo/src/graph/cores.cc" "src/CMakeFiles/mbc.dir/graph/cores.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/cores.cc.o.d"
  "/root/repo/src/graph/graph.cc" "src/CMakeFiles/mbc.dir/graph/graph.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/graph.cc.o.d"
  "/root/repo/src/graph/graph_io.cc" "src/CMakeFiles/mbc.dir/graph/graph_io.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/graph_io.cc.o.d"
  "/root/repo/src/graph/sampling.cc" "src/CMakeFiles/mbc.dir/graph/sampling.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/sampling.cc.o.d"
  "/root/repo/src/graph/signed_graph.cc" "src/CMakeFiles/mbc.dir/graph/signed_graph.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/signed_graph.cc.o.d"
  "/root/repo/src/graph/signed_graph_builder.cc" "src/CMakeFiles/mbc.dir/graph/signed_graph_builder.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/signed_graph_builder.cc.o.d"
  "/root/repo/src/graph/statistics.cc" "src/CMakeFiles/mbc.dir/graph/statistics.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/statistics.cc.o.d"
  "/root/repo/src/graph/triangles.cc" "src/CMakeFiles/mbc.dir/graph/triangles.cc.o" "gcc" "src/CMakeFiles/mbc.dir/graph/triangles.cc.o.d"
  "/root/repo/src/pf/dcc_solver.cc" "src/CMakeFiles/mbc.dir/pf/dcc_solver.cc.o" "gcc" "src/CMakeFiles/mbc.dir/pf/dcc_solver.cc.o.d"
  "/root/repo/src/pf/pdecompose.cc" "src/CMakeFiles/mbc.dir/pf/pdecompose.cc.o" "gcc" "src/CMakeFiles/mbc.dir/pf/pdecompose.cc.o.d"
  "/root/repo/src/pf/pf_bs.cc" "src/CMakeFiles/mbc.dir/pf/pf_bs.cc.o" "gcc" "src/CMakeFiles/mbc.dir/pf/pf_bs.cc.o.d"
  "/root/repo/src/pf/pf_e.cc" "src/CMakeFiles/mbc.dir/pf/pf_e.cc.o" "gcc" "src/CMakeFiles/mbc.dir/pf/pf_e.cc.o.d"
  "/root/repo/src/pf/pf_star.cc" "src/CMakeFiles/mbc.dir/pf/pf_star.cc.o" "gcc" "src/CMakeFiles/mbc.dir/pf/pf_star.cc.o.d"
  "/root/repo/src/polarseeds/metrics.cc" "src/CMakeFiles/mbc.dir/polarseeds/metrics.cc.o" "gcc" "src/CMakeFiles/mbc.dir/polarseeds/metrics.cc.o.d"
  "/root/repo/src/polarseeds/polar_seeds.cc" "src/CMakeFiles/mbc.dir/polarseeds/polar_seeds.cc.o" "gcc" "src/CMakeFiles/mbc.dir/polarseeds/polar_seeds.cc.o.d"
  "/root/repo/src/related/balanced_subgraph.cc" "src/CMakeFiles/mbc.dir/related/balanced_subgraph.cc.o" "gcc" "src/CMakeFiles/mbc.dir/related/balanced_subgraph.cc.o.d"
  "/root/repo/src/related/related_cliques.cc" "src/CMakeFiles/mbc.dir/related/related_cliques.cc.o" "gcc" "src/CMakeFiles/mbc.dir/related/related_cliques.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")

file(REMOVE_RECURSE
  "libmbc.a"
)

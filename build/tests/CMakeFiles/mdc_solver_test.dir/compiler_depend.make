# Empty compiler generated dependencies file for mdc_solver_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mdc_solver_test.dir/core/mdc_solver_test.cc.o"
  "CMakeFiles/mdc_solver_test.dir/core/mdc_solver_test.cc.o.d"
  "mdc_solver_test"
  "mdc_solver_test.pdb"
  "mdc_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mdc_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/dichromatic_reductions_test.dir/dichromatic/dichromatic_reductions_test.cc.o"
  "CMakeFiles/dichromatic_reductions_test.dir/dichromatic/dichromatic_reductions_test.cc.o.d"
  "dichromatic_reductions_test"
  "dichromatic_reductions_test.pdb"
  "dichromatic_reductions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dichromatic_reductions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

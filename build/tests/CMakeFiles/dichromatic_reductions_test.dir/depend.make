# Empty dependencies file for dichromatic_reductions_test.
# This may be replaced when dependencies are built.

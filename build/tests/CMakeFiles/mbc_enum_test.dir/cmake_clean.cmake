file(REMOVE_RECURSE
  "CMakeFiles/mbc_enum_test.dir/core/mbc_enum_test.cc.o"
  "CMakeFiles/mbc_enum_test.dir/core/mbc_enum_test.cc.o.d"
  "mbc_enum_test"
  "mbc_enum_test.pdb"
  "mbc_enum_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_enum_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mbc_enum_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbc_baseline_test.dir/core/mbc_baseline_test.cc.o"
  "CMakeFiles/mbc_baseline_test.dir/core/mbc_baseline_test.cc.o.d"
  "mbc_baseline_test"
  "mbc_baseline_test.pdb"
  "mbc_baseline_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_baseline_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mbc_baseline_test.
# This may be replaced when dependencies are built.

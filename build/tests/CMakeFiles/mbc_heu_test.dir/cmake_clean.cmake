file(REMOVE_RECURSE
  "CMakeFiles/mbc_heu_test.dir/core/mbc_heu_test.cc.o"
  "CMakeFiles/mbc_heu_test.dir/core/mbc_heu_test.cc.o.d"
  "mbc_heu_test"
  "mbc_heu_test.pdb"
  "mbc_heu_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_heu_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mbc_heu_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/builder_fuzz_test.dir/graph/builder_fuzz_test.cc.o"
  "CMakeFiles/builder_fuzz_test.dir/graph/builder_fuzz_test.cc.o.d"
  "builder_fuzz_test"
  "builder_fuzz_test.pdb"
  "builder_fuzz_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/builder_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

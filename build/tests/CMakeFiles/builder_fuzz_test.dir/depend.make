# Empty dependencies file for builder_fuzz_test.
# This may be replaced when dependencies are built.

# Empty compiler generated dependencies file for pdecompose_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/pdecompose_test.dir/pf/pdecompose_test.cc.o"
  "CMakeFiles/pdecompose_test.dir/pf/pdecompose_test.cc.o.d"
  "pdecompose_test"
  "pdecompose_test.pdb"
  "pdecompose_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pdecompose_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

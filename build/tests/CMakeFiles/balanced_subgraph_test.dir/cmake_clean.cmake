file(REMOVE_RECURSE
  "CMakeFiles/balanced_subgraph_test.dir/related/balanced_subgraph_test.cc.o"
  "CMakeFiles/balanced_subgraph_test.dir/related/balanced_subgraph_test.cc.o.d"
  "balanced_subgraph_test"
  "balanced_subgraph_test.pdb"
  "balanced_subgraph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_subgraph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

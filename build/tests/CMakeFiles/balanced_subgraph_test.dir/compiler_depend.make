# Empty compiler generated dependencies file for balanced_subgraph_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for mbc_star_test.
# This may be replaced when dependencies are built.

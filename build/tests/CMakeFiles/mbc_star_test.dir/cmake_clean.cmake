file(REMOVE_RECURSE
  "CMakeFiles/mbc_star_test.dir/core/mbc_star_test.cc.o"
  "CMakeFiles/mbc_star_test.dir/core/mbc_star_test.cc.o.d"
  "mbc_star_test"
  "mbc_star_test.pdb"
  "mbc_star_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_star_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

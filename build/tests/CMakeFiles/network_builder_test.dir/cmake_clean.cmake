file(REMOVE_RECURSE
  "CMakeFiles/network_builder_test.dir/dichromatic/network_builder_test.cc.o"
  "CMakeFiles/network_builder_test.dir/dichromatic/network_builder_test.cc.o.d"
  "network_builder_test"
  "network_builder_test.pdb"
  "network_builder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/network_builder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

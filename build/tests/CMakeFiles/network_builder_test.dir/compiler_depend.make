# Empty compiler generated dependencies file for network_builder_test.
# This may be replaced when dependencies are built.

# Empty dependencies file for dcc_solver_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dcc_solver_test.dir/pf/dcc_solver_test.cc.o"
  "CMakeFiles/dcc_solver_test.dir/pf/dcc_solver_test.cc.o.d"
  "dcc_solver_test"
  "dcc_solver_test.pdb"
  "dcc_solver_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dcc_solver_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

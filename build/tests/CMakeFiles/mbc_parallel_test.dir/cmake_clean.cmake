file(REMOVE_RECURSE
  "CMakeFiles/mbc_parallel_test.dir/core/mbc_parallel_test.cc.o"
  "CMakeFiles/mbc_parallel_test.dir/core/mbc_parallel_test.cc.o.d"
  "mbc_parallel_test"
  "mbc_parallel_test.pdb"
  "mbc_parallel_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_parallel_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for mbc_parallel_test.
# This may be replaced when dependencies are built.

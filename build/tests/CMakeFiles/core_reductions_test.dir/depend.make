# Empty dependencies file for core_reductions_test.
# This may be replaced when dependencies are built.

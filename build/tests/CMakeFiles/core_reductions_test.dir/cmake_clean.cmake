file(REMOVE_RECURSE
  "CMakeFiles/core_reductions_test.dir/core/core_reductions_test.cc.o"
  "CMakeFiles/core_reductions_test.dir/core/core_reductions_test.cc.o.d"
  "core_reductions_test"
  "core_reductions_test.pdb"
  "core_reductions_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_reductions_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

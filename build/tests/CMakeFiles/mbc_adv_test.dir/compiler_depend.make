# Empty compiler generated dependencies file for mbc_adv_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbc_adv_test.dir/core/mbc_adv_test.cc.o"
  "CMakeFiles/mbc_adv_test.dir/core/mbc_adv_test.cc.o.d"
  "mbc_adv_test"
  "mbc_adv_test.pdb"
  "mbc_adv_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_adv_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

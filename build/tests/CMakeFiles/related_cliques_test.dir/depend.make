# Empty dependencies file for related_cliques_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/related_cliques_test.dir/related/related_cliques_test.cc.o"
  "CMakeFiles/related_cliques_test.dir/related/related_cliques_test.cc.o.d"
  "related_cliques_test"
  "related_cliques_test.pdb"
  "related_cliques_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/related_cliques_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for time_limit_test.
# This may be replaced when dependencies are built.

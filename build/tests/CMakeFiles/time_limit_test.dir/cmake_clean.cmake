file(REMOVE_RECURSE
  "CMakeFiles/time_limit_test.dir/core/time_limit_test.cc.o"
  "CMakeFiles/time_limit_test.dir/core/time_limit_test.cc.o.d"
  "time_limit_test"
  "time_limit_test.pdb"
  "time_limit_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/time_limit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

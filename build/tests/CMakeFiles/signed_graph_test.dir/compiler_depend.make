# Empty compiler generated dependencies file for signed_graph_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/signed_graph_test.dir/graph/signed_graph_test.cc.o"
  "CMakeFiles/signed_graph_test.dir/graph/signed_graph_test.cc.o.d"
  "signed_graph_test"
  "signed_graph_test.pdb"
  "signed_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signed_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

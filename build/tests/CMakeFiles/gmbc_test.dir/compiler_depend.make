# Empty compiler generated dependencies file for gmbc_test.
# This may be replaced when dependencies are built.

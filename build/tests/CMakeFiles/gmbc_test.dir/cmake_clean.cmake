file(REMOVE_RECURSE
  "CMakeFiles/gmbc_test.dir/gmbc/gmbc_test.cc.o"
  "CMakeFiles/gmbc_test.dir/gmbc/gmbc_test.cc.o.d"
  "gmbc_test"
  "gmbc_test.pdb"
  "gmbc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gmbc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for rating_converter_test.
# This may be replaced when dependencies are built.

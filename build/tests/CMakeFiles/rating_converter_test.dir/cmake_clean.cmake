file(REMOVE_RECURSE
  "CMakeFiles/rating_converter_test.dir/datasets/rating_converter_test.cc.o"
  "CMakeFiles/rating_converter_test.dir/datasets/rating_converter_test.cc.o.d"
  "rating_converter_test"
  "rating_converter_test.pdb"
  "rating_converter_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rating_converter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

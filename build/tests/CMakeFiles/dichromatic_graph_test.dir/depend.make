# Empty dependencies file for dichromatic_graph_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/dichromatic_graph_test.dir/dichromatic/dichromatic_graph_test.cc.o"
  "CMakeFiles/dichromatic_graph_test.dir/dichromatic/dichromatic_graph_test.cc.o.d"
  "dichromatic_graph_test"
  "dichromatic_graph_test.pdb"
  "dichromatic_graph_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dichromatic_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for polar_seeds_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/polar_seeds_test.dir/polarseeds/polar_seeds_test.cc.o"
  "CMakeFiles/polar_seeds_test.dir/polarseeds/polar_seeds_test.cc.o.d"
  "polar_seeds_test"
  "polar_seeds_test.pdb"
  "polar_seeds_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polar_seeds_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for cross_algorithm_test.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/cross_algorithm_test.dir/core/cross_algorithm_test.cc.o"
  "CMakeFiles/cross_algorithm_test.dir/core/cross_algorithm_test.cc.o.d"
  "cross_algorithm_test"
  "cross_algorithm_test.pdb"
  "cross_algorithm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cross_algorithm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

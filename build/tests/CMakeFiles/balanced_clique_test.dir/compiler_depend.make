# Empty compiler generated dependencies file for balanced_clique_test.
# This may be replaced when dependencies are built.

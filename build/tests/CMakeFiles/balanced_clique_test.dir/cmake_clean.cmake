file(REMOVE_RECURSE
  "CMakeFiles/balanced_clique_test.dir/core/balanced_clique_test.cc.o"
  "CMakeFiles/balanced_clique_test.dir/core/balanced_clique_test.cc.o.d"
  "balanced_clique_test"
  "balanced_clique_test.pdb"
  "balanced_clique_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/balanced_clique_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

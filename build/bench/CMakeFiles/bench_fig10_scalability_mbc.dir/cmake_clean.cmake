file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_scalability_mbc.dir/bench_fig10_scalability_mbc.cc.o"
  "CMakeFiles/bench_fig10_scalability_mbc.dir/bench_fig10_scalability_mbc.cc.o.d"
  "bench_fig10_scalability_mbc"
  "bench_fig10_scalability_mbc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_scalability_mbc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig5_polarity.
# This may be replaced when dependencies are built.

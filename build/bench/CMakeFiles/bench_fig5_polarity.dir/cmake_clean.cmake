file(REMOVE_RECURSE
  "CMakeFiles/bench_fig5_polarity.dir/bench_fig5_polarity.cc.o"
  "CMakeFiles/bench_fig5_polarity.dir/bench_fig5_polarity.cc.o.d"
  "bench_fig5_polarity"
  "bench_fig5_polarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig5_polarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

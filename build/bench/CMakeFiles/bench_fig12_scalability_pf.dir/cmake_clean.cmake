file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_scalability_pf.dir/bench_fig12_scalability_pf.cc.o"
  "CMakeFiles/bench_fig12_scalability_pf.dir/bench_fig12_scalability_pf.cc.o.d"
  "bench_fig12_scalability_pf"
  "bench_fig12_scalability_pf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_scalability_pf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_fig12_scalability_pf.
# This may be replaced when dependencies are built.

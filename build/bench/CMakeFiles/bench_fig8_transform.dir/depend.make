# Empty dependencies file for bench_fig8_transform.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/bench_fig8_transform.dir/bench_fig8_transform.cc.o"
  "CMakeFiles/bench_fig8_transform.dir/bench_fig8_transform.cc.o.d"
  "bench_fig8_transform"
  "bench_fig8_transform.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig8_transform.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

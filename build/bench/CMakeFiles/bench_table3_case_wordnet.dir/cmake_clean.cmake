file(REMOVE_RECURSE
  "CMakeFiles/bench_table3_case_wordnet.dir/bench_table3_case_wordnet.cc.o"
  "CMakeFiles/bench_table3_case_wordnet.dir/bench_table3_case_wordnet.cc.o.d"
  "bench_table3_case_wordnet"
  "bench_table3_case_wordnet.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table3_case_wordnet.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for bench_table3_case_wordnet.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_fig9_pf_runtime.
# This may be replaced when dependencies are built.

# Empty dependencies file for bench_table2_case_reddit.
# This may be replaced when dependencies are built.

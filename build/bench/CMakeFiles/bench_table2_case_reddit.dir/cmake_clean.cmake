file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_case_reddit.dir/bench_table2_case_reddit.cc.o"
  "CMakeFiles/bench_table2_case_reddit.dir/bench_table2_case_reddit.cc.o.d"
  "bench_table2_case_reddit"
  "bench_table2_case_reddit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_case_reddit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

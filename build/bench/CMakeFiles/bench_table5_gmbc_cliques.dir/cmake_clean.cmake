file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_gmbc_cliques.dir/bench_table5_gmbc_cliques.cc.o"
  "CMakeFiles/bench_table5_gmbc_cliques.dir/bench_table5_gmbc_cliques.cc.o.d"
  "bench_table5_gmbc_cliques"
  "bench_table5_gmbc_cliques.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_gmbc_cliques.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty dependencies file for bench_table5_gmbc_cliques.
# This may be replaced when dependencies are built.

file(REMOVE_RECURSE
  "CMakeFiles/mbc_cli.dir/mbc_cli.cc.o"
  "CMakeFiles/mbc_cli.dir/mbc_cli.cc.o.d"
  "mbc_cli"
  "mbc_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mbc_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

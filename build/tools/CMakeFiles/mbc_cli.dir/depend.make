# Empty dependencies file for mbc_cli.
# This may be replaced when dependencies are built.

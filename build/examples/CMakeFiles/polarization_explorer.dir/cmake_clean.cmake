file(REMOVE_RECURSE
  "CMakeFiles/polarization_explorer.dir/polarization_explorer.cpp.o"
  "CMakeFiles/polarization_explorer.dir/polarization_explorer.cpp.o.d"
  "polarization_explorer"
  "polarization_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/polarization_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

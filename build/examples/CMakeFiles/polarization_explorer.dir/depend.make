# Empty dependencies file for polarization_explorer.
# This may be replaced when dependencies are built.

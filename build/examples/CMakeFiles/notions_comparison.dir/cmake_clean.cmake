file(REMOVE_RECURSE
  "CMakeFiles/notions_comparison.dir/notions_comparison.cpp.o"
  "CMakeFiles/notions_comparison.dir/notions_comparison.cpp.o.d"
  "notions_comparison"
  "notions_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/notions_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

# Empty compiler generated dependencies file for notions_comparison.
# This may be replaced when dependencies are built.

# Empty dependencies file for synonym_antonym.
# This may be replaced when dependencies are built.

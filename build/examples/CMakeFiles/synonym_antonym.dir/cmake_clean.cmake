file(REMOVE_RECURSE
  "CMakeFiles/synonym_antonym.dir/synonym_antonym.cpp.o"
  "CMakeFiles/synonym_antonym.dir/synonym_antonym.cpp.o.d"
  "synonym_antonym"
  "synonym_antonym.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/synonym_antonym.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

file(REMOVE_RECURSE
  "CMakeFiles/conflict_discovery.dir/conflict_discovery.cpp.o"
  "CMakeFiles/conflict_discovery.dir/conflict_discovery.cpp.o.d"
  "conflict_discovery"
  "conflict_discovery.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/conflict_discovery.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()

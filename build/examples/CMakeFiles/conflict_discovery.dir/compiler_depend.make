# Empty compiler generated dependencies file for conflict_discovery.
# This may be replaced when dependencies are built.

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/graph.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

TEST(GraphTest, BuildFromEdgePairs) {
  const std::vector<std::pair<VertexId, VertexId>> edges = {
      {0, 1}, {1, 2}, {0, 2}, {2, 3}};
  Graph graph(4, edges);
  EXPECT_EQ(graph.NumVertices(), 4u);
  EXPECT_EQ(graph.NumEdges(), 4u);
  EXPECT_EQ(graph.Degree(2), 3u);
  EXPECT_EQ(graph.Degree(3), 1u);
  const auto n2 = graph.Neighbors(2);
  EXPECT_EQ(std::vector<VertexId>(n2.begin(), n2.end()),
            (std::vector<VertexId>{0, 1, 3}));
}

TEST(GraphTest, HasEdge) {
  const std::vector<std::pair<VertexId, VertexId>> edges = {{0, 1}, {1, 2}};
  Graph graph(3, edges);
  EXPECT_TRUE(graph.HasEdge(0, 1));
  EXPECT_TRUE(graph.HasEdge(1, 0));
  EXPECT_FALSE(graph.HasEdge(0, 2));
}

TEST(GraphTest, FromSignedIgnoringSigns) {
  SignedGraph signed_graph =
      testing_util::FromText("0 1 1\n1 2 -1\n0 2 -1\n2 3 1\n");
  Graph graph = Graph::FromSignedIgnoringSigns(signed_graph);
  EXPECT_EQ(graph.NumVertices(), 4u);
  EXPECT_EQ(graph.NumEdges(), 4u);
  EXPECT_TRUE(graph.HasEdge(1, 2));  // was negative
  EXPECT_TRUE(graph.HasEdge(0, 1));  // was positive
  EXPECT_FALSE(graph.HasEdge(1, 3));
}

TEST(GraphTest, EmptyGraph) {
  Graph graph(0, {});
  EXPECT_EQ(graph.NumVertices(), 0u);
  EXPECT_EQ(graph.NumEdges(), 0u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Randomized differential test: SignedGraphBuilder + SignedGraph queried
// against a naive map-of-pairs reference model, over many random edge
// scripts including duplicates.
#include <map>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/graph/signed_graph_builder.h"

namespace mbc {
namespace {

using EdgeKey = std::pair<VertexId, VertexId>;

TEST(BuilderFuzzTest, MatchesReferenceModel) {
  Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId n = 3 + static_cast<VertexId>(rng.NextBounded(20));
    const int ops = 5 + static_cast<int>(rng.NextBounded(120));

    SignedGraphBuilder builder(n);
    builder.set_sign_conflict_policy(
        SignedGraphBuilder::SignConflictPolicy::kKeepNegative);
    std::map<EdgeKey, bool> reference;  // true = has a negative report

    for (int op = 0; op < ops; ++op) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const Sign sign =
          rng.NextBernoulli(0.4) ? Sign::kNegative : Sign::kPositive;
      builder.AddEdge(u, v, sign);
      auto [it, inserted] =
          reference.emplace(EdgeKey{u, v}, sign == Sign::kNegative);
      if (!inserted) it->second |= (sign == Sign::kNegative);
    }

    const SignedGraph graph = std::move(builder).Build();
    // Edge-by-edge agreement.
    ASSERT_EQ(graph.NumEdges(), reference.size()) << "trial=" << trial;
    for (const auto& [key, negative] : reference) {
      EXPECT_EQ(graph.EdgeSign(key.first, key.second),
                negative ? Sign::kNegative : Sign::kPositive)
          << "trial=" << trial << " edge " << key.first << "," << key.second;
    }
    // Degree sums agree with the model.
    uint64_t degree_sum = 0;
    for (VertexId v = 0; v < n; ++v) degree_sum += graph.Degree(v);
    EXPECT_EQ(degree_sum, 2 * reference.size());
    // Adjacency sortedness invariant.
    for (VertexId v = 0; v < n; ++v) {
      const auto pos = graph.PositiveNeighbors(v);
      EXPECT_TRUE(std::is_sorted(pos.begin(), pos.end()));
      const auto neg = graph.NegativeNeighbors(v);
      EXPECT_TRUE(std::is_sorted(neg.begin(), neg.end()));
    }
  }
}

TEST(BuilderFuzzTest, InducedSubgraphMatchesModel) {
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId n = 10 + static_cast<VertexId>(rng.NextBounded(20));
    SignedGraphBuilder builder(n);
    std::map<EdgeKey, Sign> reference;
    for (int op = 0; op < 80; ++op) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (reference.count({u, v})) continue;
      const Sign sign =
          rng.NextBernoulli(0.5) ? Sign::kNegative : Sign::kPositive;
      builder.AddEdge(u, v, sign);
      reference.emplace(EdgeKey{u, v}, sign);
    }
    const SignedGraph graph = std::move(builder).Build();

    // Random selection.
    std::vector<VertexId> selection;
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextBernoulli(0.5)) selection.push_back(v);
    }
    const SignedGraph::InducedResult induced =
        graph.InducedSubgraph(selection);
    // Count expected surviving edges.
    std::vector<uint8_t> in(n, 0);
    for (VertexId v : selection) in[v] = 1;
    uint64_t expected = 0;
    for (const auto& [key, sign] : reference) {
      (void)sign;
      expected += in[key.first] && in[key.second];
    }
    EXPECT_EQ(induced.graph.NumEdges(), expected) << "trial=" << trial;
  }
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Randomized differential test: SignedGraphBuilder + SignedGraph queried
// against a naive map-of-pairs reference model, over many random edge
// scripts including duplicates. Also adversarial byte-level cases for the
// binary reader: every malformed blob must come back as a clean Corruption
// status, never a crash or an attempted giant allocation.
#include <cstdint>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/graph/binary_io.h"
#include "src/graph/signed_graph_builder.h"

namespace mbc {
namespace {

using EdgeKey = std::pair<VertexId, VertexId>;

TEST(BuilderFuzzTest, MatchesReferenceModel) {
  Rng rng(2026);
  for (int trial = 0; trial < 40; ++trial) {
    const VertexId n = 3 + static_cast<VertexId>(rng.NextBounded(20));
    const int ops = 5 + static_cast<int>(rng.NextBounded(120));

    SignedGraphBuilder builder(n);
    builder.set_sign_conflict_policy(
        SignedGraphBuilder::SignConflictPolicy::kKeepNegative);
    std::map<EdgeKey, bool> reference;  // true = has a negative report

    for (int op = 0; op < ops; ++op) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      const Sign sign =
          rng.NextBernoulli(0.4) ? Sign::kNegative : Sign::kPositive;
      builder.AddEdge(u, v, sign);
      auto [it, inserted] =
          reference.emplace(EdgeKey{u, v}, sign == Sign::kNegative);
      if (!inserted) it->second |= (sign == Sign::kNegative);
    }

    const SignedGraph graph = std::move(builder).Build();
    // Edge-by-edge agreement.
    ASSERT_EQ(graph.NumEdges(), reference.size()) << "trial=" << trial;
    for (const auto& [key, negative] : reference) {
      EXPECT_EQ(graph.EdgeSign(key.first, key.second),
                negative ? Sign::kNegative : Sign::kPositive)
          << "trial=" << trial << " edge " << key.first << "," << key.second;
    }
    // Degree sums agree with the model.
    uint64_t degree_sum = 0;
    for (VertexId v = 0; v < n; ++v) degree_sum += graph.Degree(v);
    EXPECT_EQ(degree_sum, 2 * reference.size());
    // Adjacency sortedness invariant.
    for (VertexId v = 0; v < n; ++v) {
      const auto pos = graph.PositiveNeighbors(v);
      EXPECT_TRUE(std::is_sorted(pos.begin(), pos.end()));
      const auto neg = graph.NegativeNeighbors(v);
      EXPECT_TRUE(std::is_sorted(neg.begin(), neg.end()));
    }
  }
}

TEST(BuilderFuzzTest, InducedSubgraphMatchesModel) {
  Rng rng(555);
  for (int trial = 0; trial < 20; ++trial) {
    const VertexId n = 10 + static_cast<VertexId>(rng.NextBounded(20));
    SignedGraphBuilder builder(n);
    std::map<EdgeKey, Sign> reference;
    for (int op = 0; op < 80; ++op) {
      VertexId u = static_cast<VertexId>(rng.NextBounded(n));
      VertexId v = static_cast<VertexId>(rng.NextBounded(n));
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (reference.count({u, v})) continue;
      const Sign sign =
          rng.NextBernoulli(0.5) ? Sign::kNegative : Sign::kPositive;
      builder.AddEdge(u, v, sign);
      reference.emplace(EdgeKey{u, v}, sign);
    }
    const SignedGraph graph = std::move(builder).Build();

    // Random selection.
    std::vector<VertexId> selection;
    for (VertexId v = 0; v < n; ++v) {
      if (rng.NextBernoulli(0.5)) selection.push_back(v);
    }
    const SignedGraph::InducedResult induced =
        graph.InducedSubgraph(selection);
    // Count expected surviving edges.
    std::vector<uint8_t> in(n, 0);
    for (VertexId v : selection) in[v] = 1;
    uint64_t expected = 0;
    for (const auto& [key, sign] : reference) {
      (void)sign;
      expected += in[key.first] && in[key.second];
    }
    EXPECT_EQ(induced.graph.NumEdges(), expected) << "trial=" << trial;
  }
}

// --- Adversarial binary blobs -------------------------------------------
//
// These tests hand-build byte sequences in the MBCG v1 layout (magic,
// version, n, num_pos, num_neg, edge words, FNV-1a checksum) and corrupt
// them in targeted ways. The contract under test: ReadSignedGraphBinary
// rejects every malformed file with Status::Corruption and never crashes,
// over-reads, or allocates based on an unvalidated header field.

void AppendBytes(std::string* blob, const void* data, size_t bytes) {
  blob->append(static_cast<const char*>(data), bytes);
}

template <typename T>
void AppendValue(std::string* blob, T value) {
  AppendBytes(blob, &value, sizeof(value));
}

uint64_t FuzzFnv1aMix(uint64_t hash, uint64_t value) {
  hash ^= value;
  hash *= 0x100000001b3ULL;
  return hash;
}

// A well-formed 4-vertex blob: + edges {0,1},{2,3}; - edge {0,2}.
std::string ValidBlob() {
  const std::vector<uint32_t> pos = {0, 1, 2, 3};
  const std::vector<uint32_t> neg = {0, 2};
  uint64_t checksum = 0xcbf29ce484222325ULL;
  checksum = FuzzFnv1aMix(checksum, 4);             // n
  checksum = FuzzFnv1aMix(checksum, pos.size() / 2);
  checksum = FuzzFnv1aMix(checksum, neg.size() / 2);
  for (uint32_t word : pos) checksum = FuzzFnv1aMix(checksum, word);
  for (uint32_t word : neg) checksum = FuzzFnv1aMix(checksum, word);

  std::string blob;
  AppendBytes(&blob, "MBCG", 4);
  AppendValue<uint32_t>(&blob, 1);                  // version
  AppendValue<uint32_t>(&blob, 4);                  // n
  AppendValue<uint64_t>(&blob, pos.size() / 2);
  AppendValue<uint64_t>(&blob, neg.size() / 2);
  for (uint32_t word : pos) AppendValue(&blob, word);
  for (uint32_t word : neg) AppendValue(&blob, word);
  AppendValue(&blob, checksum);
  return blob;
}

std::string WriteBlob(const std::string& name, const std::string& blob) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(blob.data(), static_cast<std::streamsize>(blob.size()));
  out.close();
  return path;
}

TEST(BinaryBlobFuzzTest, ValidBlobRoundTrips) {
  const auto graph =
      ReadSignedGraphBinary(WriteBlob("blob_valid.mbcg", ValidBlob()));
  ASSERT_TRUE(graph.ok()) << graph.status().ToString();
  EXPECT_EQ(graph.value().NumVertices(), 4u);
  EXPECT_EQ(graph.value().NumPositiveEdges(), 2u);
  EXPECT_EQ(graph.value().NumNegativeEdges(), 1u);
}

TEST(BinaryBlobFuzzTest, BadMagicAndVersionAreRejected) {
  std::string blob = ValidBlob();
  blob[0] = 'X';
  EXPECT_TRUE(ReadSignedGraphBinary(WriteBlob("blob_magic.mbcg", blob))
                  .status()
                  .IsCorruption());

  blob = ValidBlob();
  blob[4] = 99;  // version field
  EXPECT_TRUE(ReadSignedGraphBinary(WriteBlob("blob_version.mbcg", blob))
                  .status()
                  .IsCorruption());
}

TEST(BinaryBlobFuzzTest, EveryTruncationPointIsRejected) {
  const std::string blob = ValidBlob();
  // Chop the file at every byte boundary: empty file, partial magic,
  // partial header, partial edge words, missing checksum bytes.
  for (size_t len = 0; len < blob.size(); ++len) {
    const std::string path =
        WriteBlob("blob_trunc.mbcg", blob.substr(0, len));
    const Status status = ReadSignedGraphBinary(path).status();
    EXPECT_TRUE(status.IsCorruption()) << "len=" << len << " got "
                                       << status.ToString();
  }
}

TEST(BinaryBlobFuzzTest, HugeEdgeCountsFailBeforeAllocation) {
  // A header claiming ~10^18 edges in a 50-byte file must be rejected by
  // the size check (or the overflow guard) without touching the counts.
  for (const uint64_t count :
       {uint64_t{1} << 60, UINT64_MAX, uint64_t{123456789012345}}) {
    std::string blob = ValidBlob();
    std::memcpy(&blob[12], &count, sizeof(count));  // num_pos field
    const Status status =
        ReadSignedGraphBinary(WriteBlob("blob_huge.mbcg", blob)).status();
    EXPECT_TRUE(status.IsCorruption()) << "count=" << count;
  }
}

TEST(BinaryBlobFuzzTest, PayloadCorruptionFailsChecksum) {
  std::string blob = ValidBlob();
  blob[28] ^= 0x40;  // flip a bit inside the first positive edge word
  const Status status =
      ReadSignedGraphBinary(WriteBlob("blob_payload.mbcg", blob)).status();
  EXPECT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("checksum"), std::string::npos)
      << status.ToString();
}

TEST(BinaryBlobFuzzTest, InvalidEdgesAreRejected) {
  // Out-of-range endpoint and self-loop, each with a recomputed checksum
  // so the edge validator (not the checksum) is what rejects them.
  const std::vector<std::vector<uint32_t>> bad_pos = {
      {0, 9, 2, 3},  // endpoint >= n
      {1, 1, 2, 3},  // self-loop
  };
  for (size_t i = 0; i < bad_pos.size(); ++i) {
    const std::vector<uint32_t>& pos = bad_pos[i];
    const std::vector<uint32_t> neg = {0, 2};
    uint64_t checksum = 0xcbf29ce484222325ULL;
    checksum = FuzzFnv1aMix(checksum, 4);
    checksum = FuzzFnv1aMix(checksum, pos.size() / 2);
    checksum = FuzzFnv1aMix(checksum, neg.size() / 2);
    for (uint32_t word : pos) checksum = FuzzFnv1aMix(checksum, word);
    for (uint32_t word : neg) checksum = FuzzFnv1aMix(checksum, word);
    std::string blob;
    AppendBytes(&blob, "MBCG", 4);
    AppendValue<uint32_t>(&blob, 1);
    AppendValue<uint32_t>(&blob, 4);
    AppendValue<uint64_t>(&blob, pos.size() / 2);
    AppendValue<uint64_t>(&blob, neg.size() / 2);
    for (uint32_t word : pos) AppendValue(&blob, word);
    for (uint32_t word : neg) AppendValue(&blob, word);
    AppendValue(&blob, checksum);
    const Status status =
        ReadSignedGraphBinary(WriteBlob("blob_edge.mbcg", blob)).status();
    EXPECT_TRUE(status.IsCorruption()) << "case=" << i;
    EXPECT_NE(status.message().find("edge"), std::string::npos)
        << status.ToString();
  }
}

TEST(BinaryBlobFuzzTest, TrailingGarbageIsRejected) {
  std::string blob = ValidBlob();
  blob += "extra bytes after checksum";
  EXPECT_TRUE(ReadSignedGraphBinary(WriteBlob("blob_trail.mbcg", blob))
                  .status()
                  .IsCorruption());
}

TEST(BinaryBlobFuzzTest, RandomByteFlipsNeverCrash) {
  Rng rng(4242);
  const std::string valid = ValidBlob();
  for (int trial = 0; trial < 200; ++trial) {
    std::string blob = valid;
    const int flips = 1 + static_cast<int>(rng.NextBounded(4));
    for (int f = 0; f < flips; ++f) {
      const size_t at = rng.NextBounded(blob.size());
      blob[at] = static_cast<char>(blob[at] ^
                                   (1u << rng.NextBounded(8)));
    }
    // Any outcome is fine as long as it is a clean Status (mutations can
    // cancel out or hit ignored padding); no crash, no bad allocation.
    const auto result =
        ReadSignedGraphBinary(WriteBlob("blob_flip.mbcg", blob));
    if (!result.ok()) {
      EXPECT_TRUE(result.status().IsCorruption() ||
                  result.status().IsIOError())
          << result.status().ToString();
    }
  }
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/graph_io.h"

#include <cstdio>
#include <string>

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(GraphIoTest, ParsesBasicEdgeList) {
  Result<SignedGraph> result = ParseSignedEdgeList("0 1 1\n1 2 -1\n");
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  const SignedGraph& graph = result.value();
  EXPECT_EQ(graph.NumVertices(), 3u);
  EXPECT_EQ(graph.NumPositiveEdges(), 1u);
  EXPECT_EQ(graph.NumNegativeEdges(), 1u);
}

TEST(GraphIoTest, AcceptsSignVariantsAndComments) {
  const std::string text =
      "# a comment\n"
      "% another comment style\n"
      "\n"
      "10 20 +1\n"
      "20 30 -\n"
      "30 40 +\n"
      "  40   50   -1  \n";
  Result<SignedGraph> result = ParseSignedEdgeList(text);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result.value().NumVertices(), 5u);
  EXPECT_EQ(result.value().NumPositiveEdges(), 2u);
  EXPECT_EQ(result.value().NumNegativeEdges(), 2u);
}

TEST(GraphIoTest, DensifiesSparseIds) {
  Result<SignedGraph> result = ParseSignedEdgeList("1000000 5 1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumVertices(), 2u);
}

TEST(GraphIoTest, DropsSelfLoops) {
  Result<SignedGraph> result = ParseSignedEdgeList("7 7 1\n1 2 1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumEdges(), 1u);
}

TEST(GraphIoTest, NegativeWinsOnConflict) {
  Result<SignedGraph> result = ParseSignedEdgeList("1 2 1\n1 2 -1\n");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().NumNegativeEdges(), 1u);
  EXPECT_EQ(result.value().NumPositiveEdges(), 0u);
}

TEST(GraphIoTest, RejectsMalformedLines) {
  EXPECT_TRUE(ParseSignedEdgeList("1 2\n").status().IsCorruption());
  EXPECT_TRUE(ParseSignedEdgeList("1 2 5\n").status().IsCorruption());
  EXPECT_TRUE(ParseSignedEdgeList("x y 1\n").status().IsCorruption());
}

TEST(GraphIoTest, ErrorMessageNamesLine) {
  Status status = ParseSignedEdgeList("0 1 1\n0 2 bogus\n").status();
  ASSERT_TRUE(status.IsCorruption());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
}

TEST(GraphIoTest, MissingFileIsIOError) {
  Result<SignedGraph> result =
      ReadSignedEdgeList("/nonexistent/path/graph.txt");
  EXPECT_TRUE(result.status().IsIOError());
}

TEST(GraphIoTest, FileRoundTrip) {
  Result<SignedGraph> parsed = ParseSignedEdgeList("0 1 1\n1 2 -1\n0 2 -1\n");
  ASSERT_TRUE(parsed.ok());
  const std::string path = ::testing::TempDir() + "/mbc_io_roundtrip.txt";
  ASSERT_TRUE(WriteSignedEdgeList(parsed.value(), path).ok());
  Result<SignedGraph> reread = ReadSignedEdgeList(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().NumVertices(), parsed.value().NumVertices());
  EXPECT_EQ(reread.value().NumPositiveEdges(),
            parsed.value().NumPositiveEdges());
  EXPECT_EQ(reread.value().NumNegativeEdges(),
            parsed.value().NumNegativeEdges());
  std::remove(path.c_str());
}

TEST(GraphIoTest, ToStringContainsAllEdges) {
  Result<SignedGraph> parsed = ParseSignedEdgeList("0 1 1\n1 2 -1\n");
  ASSERT_TRUE(parsed.ok());
  const std::string text = SignedEdgeListToString(parsed.value());
  EXPECT_NE(text.find("0 1 1"), std::string::npos);
  EXPECT_NE(text.find("1 2 -1"), std::string::npos);
}

}  // namespace
}  // namespace mbc

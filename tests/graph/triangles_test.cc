// Copyright 2026 The balanced-clique Authors.
#include "src/graph/triangles.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;

TEST(TrianglesTest, ClassifiesSignPatterns) {
  // Common neighbors of (0,1): 2 with (+,+), 3 with (-,-), 4 with (+,-),
  // 5 with (-,+).
  const SignedGraph graph = FromText(
      "0 1 1\n"
      "0 2 1\n1 2 1\n"
      "0 3 -1\n1 3 -1\n"
      "0 4 1\n1 4 -1\n"
      "0 5 -1\n1 5 1\n");
  const EdgeTriangleCounts counts = CountEdgeTriangles(graph, 0, 1);
  EXPECT_EQ(counts.pos_pos, 1u);
  EXPECT_EQ(counts.neg_neg, 1u);
  EXPECT_EQ(counts.pos_neg, 1u);
  EXPECT_EQ(counts.neg_pos, 1u);
}

TEST(TrianglesTest, OrientationMatters) {
  const SignedGraph graph = FromText("0 1 -1\n0 2 1\n1 2 -1\n");
  const EdgeTriangleCounts forward = CountEdgeTriangles(graph, 0, 1);
  EXPECT_EQ(forward.pos_neg, 1u);
  EXPECT_EQ(forward.neg_pos, 0u);
  const EdgeTriangleCounts backward = CountEdgeTriangles(graph, 1, 0);
  EXPECT_EQ(backward.pos_neg, 0u);
  EXPECT_EQ(backward.neg_pos, 1u);
}

TEST(TrianglesTest, NoCommonNeighbors) {
  const SignedGraph graph = FromText("0 1 1\n1 2 1\n");
  const EdgeTriangleCounts counts = CountEdgeTriangles(graph, 0, 1);
  EXPECT_EQ(counts.pos_pos + counts.neg_neg + counts.pos_neg + counts.neg_pos,
            0u);
}

TEST(TrianglesTest, TotalTriangleCount) {
  // K4 has 4 triangles.
  std::string text;
  for (int u = 0; u < 4; ++u) {
    for (int v = u + 1; v < 4; ++v) {
      text += std::to_string(u) + " " + std::to_string(v) + " 1\n";
    }
  }
  EXPECT_EQ(CountTriangles(FromText(text)), 4u);
}

TEST(TrianglesTest, TriangleFreeGraph) {
  const SignedGraph graph = FromText("0 1 1\n1 2 -1\n2 3 1\n3 0 -1\n");
  EXPECT_EQ(CountTriangles(graph), 0u);
}

// Differential check against an O(n^3) reference.
TEST(TrianglesTest, RandomizedTotalMatchesBruteForce) {
  const SignedGraph graph = testing_util::RandomSignedGraph(40, 200, 0.4, 3);
  uint64_t brute = 0;
  for (VertexId a = 0; a < graph.NumVertices(); ++a) {
    for (VertexId b = a + 1; b < graph.NumVertices(); ++b) {
      if (!graph.EdgeSign(a, b).has_value()) continue;
      for (VertexId c = b + 1; c < graph.NumVertices(); ++c) {
        brute += graph.EdgeSign(a, c).has_value() &&
                 graph.EdgeSign(b, c).has_value();
      }
    }
  }
  EXPECT_EQ(CountTriangles(graph), brute);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/sampling.h"

#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

TEST(SamplingTest, FullFractionKeepsEverything) {
  const SignedGraph graph = testing_util::RandomSignedGraph(100, 400, 0.3, 1);
  const SignedGraph sample = SampleVertexInducedSubgraph(graph, 1.0, 42);
  EXPECT_EQ(sample.NumVertices(), graph.NumVertices());
  EXPECT_EQ(sample.NumEdges(), graph.NumEdges());
}

TEST(SamplingTest, ZeroFractionIsEmpty) {
  const SignedGraph graph = testing_util::RandomSignedGraph(100, 400, 0.3, 1);
  const SignedGraph sample = SampleVertexInducedSubgraph(graph, 0.0, 42);
  EXPECT_EQ(sample.NumVertices(), 0u);
}

TEST(SamplingTest, TargetsRequestedSize) {
  const SignedGraph graph = testing_util::RandomSignedGraph(1000, 4000, 0.3, 2);
  const SignedGraph sample = SampleVertexInducedSubgraph(graph, 0.4, 7);
  EXPECT_EQ(sample.NumVertices(), 400u);
}

TEST(SamplingTest, DeterministicGivenSeed) {
  const SignedGraph graph = testing_util::RandomSignedGraph(500, 2000, 0.3, 3);
  std::vector<VertexId> map_a;
  std::vector<VertexId> map_b;
  SampleVertexInducedSubgraph(graph, 0.5, 99, &map_a);
  SampleVertexInducedSubgraph(graph, 0.5, 99, &map_b);
  EXPECT_EQ(map_a, map_b);
  std::vector<VertexId> map_c;
  SampleVertexInducedSubgraph(graph, 0.5, 100, &map_c);
  EXPECT_NE(map_a, map_c);
}

TEST(SamplingTest, EdgesAreInduced) {
  const SignedGraph graph = testing_util::RandomSignedGraph(200, 1500, 0.4, 4);
  std::vector<VertexId> to_original;
  const SignedGraph sample =
      SampleVertexInducedSubgraph(graph, 0.3, 5, &to_original);
  ASSERT_EQ(to_original.size(), sample.NumVertices());
  sample.ForEachEdge([&](VertexId u, VertexId v, Sign sign) {
    EXPECT_EQ(graph.EdgeSign(to_original[u], to_original[v]), sign);
  });
}

}  // namespace
}  // namespace mbc

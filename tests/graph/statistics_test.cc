// Copyright 2026 The balanced-clique Authors.
#include "src/graph/statistics.h"

#include <gtest/gtest.h>

#include "src/graph/triangles.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;

TEST(TriangleCensusTest, ClassifiesAllFourTypes) {
  // Four disjoint triangles, one of each sign pattern.
  const SignedGraph graph = FromText(
      "0 1 1\n1 2 1\n0 2 1\n"      // +++
      "3 4 1\n4 5 1\n3 5 -1\n"     // ++-
      "6 7 1\n7 8 -1\n6 8 -1\n"    // +--
      "9 10 -1\n10 11 -1\n9 11 -1\n");  // ---
  const SignedTriangleCensus census = CountSignedTriangles(graph);
  EXPECT_EQ(census.neg0, 1u);
  EXPECT_EQ(census.neg1, 1u);
  EXPECT_EQ(census.neg2, 1u);
  EXPECT_EQ(census.neg3, 1u);
  EXPECT_EQ(census.total(), 4u);
  EXPECT_EQ(census.balanced(), 2u);
  EXPECT_DOUBLE_EQ(census.BalanceIndex(), 0.5);
}

TEST(TriangleCensusTest, BalancedCliqueIsFullyBalanced) {
  // The Figure 2 graph's kernel is a balanced 6-clique: every triangle in
  // a balanced clique is balanced.
  const SignedGraph graph = testing_util::Figure2Graph();
  const SignedTriangleCensus census = CountSignedTriangles(graph);
  EXPECT_GT(census.total(), 0u);
  EXPECT_EQ(census.neg1, 0u);
  EXPECT_EQ(census.neg3, 0u);
  EXPECT_DOUBLE_EQ(census.BalanceIndex(), 1.0);
}

TEST(TriangleCensusTest, TriangleFreeGraph) {
  const SignedGraph graph = FromText("0 1 1\n1 2 -1\n2 3 1\n");
  const SignedTriangleCensus census = CountSignedTriangles(graph);
  EXPECT_EQ(census.total(), 0u);
  EXPECT_DOUBLE_EQ(census.BalanceIndex(), 1.0);
}

TEST(TriangleCensusTest, MatchesPlainTriangleCount) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(60, 400, 0.45, 11);
  const SignedTriangleCensus census = CountSignedTriangles(graph);
  EXPECT_EQ(census.total(), CountTriangles(graph));
}

TEST(DegreeStatsTest, HandExample) {
  const SignedGraph graph = FromText("0 1 1\n0 2 -1\n0 3 -1\n");
  SignedGraphBuilder with_isolated(5);
  graph.ForEachEdge([&](VertexId u, VertexId v, Sign s) {
    with_isolated.AddEdge(u, v, s);
  });
  const SignedGraph g = std::move(with_isolated).Build();
  const SignedDegreeStats stats = ComputeDegreeStats(g);
  EXPECT_EQ(stats.max_degree, 3u);
  EXPECT_EQ(stats.max_positive_degree, 1u);
  EXPECT_EQ(stats.max_negative_degree, 2u);
  // Vertex 0: min(1+1, 2) = 2 is the best polar key.
  EXPECT_EQ(stats.max_polar_key, 2u);
  EXPECT_EQ(stats.isolated, 1u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 6.0 / 5.0);
}

TEST(DegreeStatsTest, EmptyGraph) {
  const SignedDegreeStats stats = ComputeDegreeStats(SignedGraph());
  EXPECT_EQ(stats.max_degree, 0u);
  EXPECT_DOUBLE_EQ(stats.mean_degree, 0.0);
}

TEST(SignDegreeCorrelationTest, BoundedAndStable) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(300, 2000, 0.4, 17);
  const double r = SignDegreeCorrelation(graph);
  EXPECT_GE(r, -1.0);
  EXPECT_LE(r, 1.0);
  EXPECT_DOUBLE_EQ(r, SignDegreeCorrelation(graph));  // deterministic
}

TEST(SignDegreeCorrelationTest, DegenerateCases) {
  EXPECT_DOUBLE_EQ(SignDegreeCorrelation(SignedGraph()), 0.0);
  // All edges the same sign -> zero sign variance -> 0.
  const SignedGraph all_positive = FromText("0 1 1\n1 2 1\n2 3 1\n");
  EXPECT_DOUBLE_EQ(SignDegreeCorrelation(all_positive), 0.0);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/cores.h"

#include <algorithm>
#include <numeric>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;
using testing_util::RandomSignedGraph;

// Triangle + pendant path: degeneracy 2, the pendant vertices have core 1.
SignedGraph TriangleWithTail() {
  return FromText("0 1 1\n1 2 -1\n0 2 1\n2 3 1\n3 4 -1\n");
}

TEST(DegeneracyTest, TriangleWithTail) {
  const DegeneracyResult result = DegeneracyDecompose(TriangleWithTail());
  EXPECT_EQ(result.degeneracy, 2u);
  EXPECT_EQ(result.core_number[0], 2u);
  EXPECT_EQ(result.core_number[1], 2u);
  EXPECT_EQ(result.core_number[2], 2u);
  EXPECT_EQ(result.core_number[3], 1u);
  EXPECT_EQ(result.core_number[4], 1u);
}

TEST(DegeneracyTest, OrderAndRankAreConsistent) {
  const SignedGraph graph = RandomSignedGraph(200, 800, 0.3, 7);
  const DegeneracyResult result = DegeneracyDecompose(graph);
  ASSERT_EQ(result.order.size(), graph.NumVertices());
  for (uint32_t i = 0; i < result.order.size(); ++i) {
    EXPECT_EQ(result.rank[result.order[i]], i);
  }
  // Order is a permutation.
  std::vector<VertexId> sorted = result.order;
  std::sort(sorted.begin(), sorted.end());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) EXPECT_EQ(sorted[v], v);
}

// Defining property of the degeneracy ordering: every vertex has at most
// `degeneracy` higher-ranked neighbors.
TEST(DegeneracyTest, HigherRankedNeighborsBounded) {
  const SignedGraph graph = RandomSignedGraph(300, 1500, 0.25, 11);
  const DegeneracyResult result = DegeneracyDecompose(graph);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    uint32_t higher = 0;
    for (VertexId u : graph.PositiveNeighbors(v)) {
      higher += result.rank[u] > result.rank[v];
    }
    for (VertexId u : graph.NegativeNeighbors(v)) {
      higher += result.rank[u] > result.rank[v];
    }
    EXPECT_LE(higher, result.degeneracy);
  }
}

TEST(DegeneracyTest, CompleteGraph) {
  std::string text;
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      text += std::to_string(u) + " " + std::to_string(v) + " 1\n";
    }
  }
  const DegeneracyResult result = DegeneracyDecompose(FromText(text));
  EXPECT_EQ(result.degeneracy, 5u);
}

TEST(DegeneracyTest, UnsignedOverloadMatchesSigned) {
  const SignedGraph graph = RandomSignedGraph(150, 600, 0.4, 3);
  const Graph unsigned_graph = Graph::FromSignedIgnoringSigns(graph);
  const DegeneracyResult a = DegeneracyDecompose(graph);
  const DegeneracyResult b = DegeneracyDecompose(unsigned_graph);
  EXPECT_EQ(a.degeneracy, b.degeneracy);
  EXPECT_EQ(a.core_number, b.core_number);
}

TEST(DegeneracyTest, EmptyGraph) {
  const DegeneracyResult result =
      DegeneracyDecompose(SignedGraph());
  EXPECT_EQ(result.degeneracy, 0u);
  EXPECT_TRUE(result.order.empty());
}

TEST(KCoreTest, TriangleWithTail) {
  const SignedGraph graph = TriangleWithTail();
  const std::vector<uint8_t> core2 = KCoreMask(graph, 2);
  EXPECT_EQ(core2, (std::vector<uint8_t>{1, 1, 1, 0, 0}));
  const std::vector<uint8_t> core1 = KCoreMask(graph, 1);
  EXPECT_EQ(core1, (std::vector<uint8_t>{1, 1, 1, 1, 1}));
  const std::vector<uint8_t> core3 = KCoreMask(graph, 3);
  EXPECT_EQ(std::count(core3.begin(), core3.end(), 1), 0);
}

TEST(KCoreTest, CascadingRemoval) {
  // A path: 1-core keeps everything, 2-core empties it (cascade).
  const SignedGraph graph = FromText("0 1 1\n1 2 1\n2 3 1\n3 4 1\n");
  const std::vector<uint8_t> core2 = KCoreMask(graph, 2);
  EXPECT_EQ(std::count(core2.begin(), core2.end(), 1), 0);
}

// Cross-check: v is in the k-core iff core_number[v] >= k.
TEST(KCoreTest, AgreesWithCoreNumbers) {
  const SignedGraph graph = RandomSignedGraph(200, 900, 0.3, 17);
  const DegeneracyResult degeneracy = DegeneracyDecompose(graph);
  for (uint32_t k = 0; k <= degeneracy.degeneracy + 1; ++k) {
    const std::vector<uint8_t> mask = KCoreMask(graph, k);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      EXPECT_EQ(mask[v] != 0, degeneracy.core_number[v] >= k)
          << "k=" << k << " v=" << v;
    }
  }
}

// Every vertex in the k-core has >= k neighbors inside the core.
TEST(KCoreTest, MinDegreeInvariant) {
  const SignedGraph graph = RandomSignedGraph(250, 1200, 0.35, 23);
  for (uint32_t k : {2u, 3u, 5u}) {
    const std::vector<uint8_t> mask = KCoreMask(graph, k);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (!mask[v]) continue;
      uint32_t inside = 0;
      for (VertexId u : graph.PositiveNeighbors(v)) inside += mask[u];
      for (VertexId u : graph.NegativeNeighbors(v)) inside += mask[u];
      EXPECT_GE(inside, k);
    }
  }
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Binary format v2 robustness and the mmap zero-copy loader: version
// negotiation (v1 legacy path stays readable), checksummed corruption
// detection on truncated / bit-flipped / misaligned files, and the
// resident-memory contract of mapped graphs.
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fingerprint.h"
#include "src/datasets/generators.h"
#include "src/graph/binary_io.h"
#include "src/graph/graph_io.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  return contents;
}

void WriteBytes(const std::string& path, const std::string& contents) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<long>(contents.size()));
}

/// Mirrors the writer's byte-wise FNV-1a so tests can forge a valid
/// header checksum after patching header fields (to reach the validation
/// paths *behind* the checksum).
uint64_t Fnv1aBytes(const void* data, size_t bytes) {
  uint64_t hash = 0xcbf29ce484222325ULL;
  const auto* p = static_cast<const uint8_t*>(data);
  for (size_t i = 0; i < bytes; ++i) {
    hash = (hash ^ p[i]) * 0x100000001b3ULL;
  }
  return hash;
}

void RefreshHeaderChecksum(std::string* contents) {
  ASSERT_GE(contents->size(), 128u);
  const uint64_t checksum = Fnv1aBytes(contents->data(), 120);
  std::memcpy(contents->data() + 120, &checksum, sizeof(checksum));
}

TEST(BinaryV2Test, WriterDefaultsToV2AndMmapRoundTrips) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(500, 3000, 0.3, 5);
  const std::string path = TempPath("v2_roundtrip.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());

  Result<SignedGraph> mapped = MmapSignedGraphBinary(path);
  ASSERT_TRUE(mapped.ok()) << mapped.status().ToString();
  EXPECT_TRUE(mapped.value().IsMapped());
  EXPECT_GT(mapped.value().MappedBytes(), 0u);
  EXPECT_EQ(SignedEdgeListToString(mapped.value()),
            SignedEdgeListToString(graph));
  std::remove(path.c_str());
}

TEST(BinaryV2Test, MappedFingerprintHintMatchesFullPass) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(300, 2000, 0.4, 9);
  const std::string path = TempPath("v2_fingerprint.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  Result<SignedGraph> mapped = MmapSignedGraphBinary(path);
  ASSERT_TRUE(mapped.ok());
  ASSERT_TRUE(mapped.value().FingerprintHint().has_value());
  EXPECT_EQ(*mapped.value().FingerprintHint(),
            FingerprintSignedGraph(graph));
  std::remove(path.c_str());
}

TEST(BinaryV2Test, LegacyV1StillLoadsViaCopyingReader) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const std::string path = TempPath("v1_legacy.mbcg");
  BinaryWriteOptions options;
  options.version = 1;
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path, options).ok());
  Result<SignedGraph> reread = ReadSignedGraphBinary(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_FALSE(reread.value().IsMapped());
  EXPECT_EQ(SignedEdgeListToString(reread.value()),
            SignedEdgeListToString(graph));
  std::remove(path.c_str());
}

TEST(BinaryV2Test, MmapRejectsV1WithInvalidArgument) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const std::string path = TempPath("v1_no_mmap.mbcg");
  BinaryWriteOptions options;
  options.version = 1;
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path, options).ok());
  Result<SignedGraph> mapped = MmapSignedGraphBinary(path);
  EXPECT_TRUE(mapped.status().IsInvalidArgument())
      << mapped.status().ToString();
  std::remove(path.c_str());
}

TEST(BinaryV2Test, TruncatedFileRejectedByBothLoaders) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(200, 1500, 0.3, 2);
  const std::string path = TempPath("v2_truncated.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  const std::string contents = SlurpFile(path);
  // Every truncation point must yield a clean error, never a crash:
  // mid-header, just past the header, and mid-payload.
  for (const size_t keep :
       {size_t{13}, size_t{128}, contents.size() / 2, contents.size() - 1}) {
    WriteBytes(path, contents.substr(0, keep));
    EXPECT_TRUE(ReadSignedGraphBinary(path).status().IsCorruption())
        << "copying reader accepted truncation at " << keep;
    EXPECT_TRUE(MmapSignedGraphBinary(path).status().IsCorruption())
        << "mmap loader accepted truncation at " << keep;
  }
  std::remove(path.c_str());
}

TEST(BinaryV2Test, HeaderBitFlipCaughtByHeaderChecksum) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const std::string path = TempPath("v2_header_flip.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  std::string contents = SlurpFile(path);
  contents[17] = static_cast<char>(contents[17] ^ 0x4);  // num_vertices
  WriteBytes(path, contents);
  EXPECT_TRUE(ReadSignedGraphBinary(path).status().IsCorruption());
  EXPECT_TRUE(MmapSignedGraphBinary(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryV2Test, PayloadBitFlipCaughtByChecksumVerification) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(200, 1500, 0.3, 4);
  const std::string path = TempPath("v2_payload_flip.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  std::string contents = SlurpFile(path);
  // Flip one bit deep in the neighbor payload (past header + offsets).
  contents[contents.size() - 64] =
      static_cast<char>(contents[contents.size() - 64] ^ 0x1);
  WriteBytes(path, contents);
  // The copying reader always verifies the payload checksum.
  EXPECT_TRUE(ReadSignedGraphBinary(path).status().IsCorruption());
  // The mmap loader verifies it only on request (default skips the O(m)
  // pass — that is the point of the zero-copy load).
  MmapReadOptions verify;
  verify.verify_payload = true;
  EXPECT_TRUE(MmapSignedGraphBinary(path, verify).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryV2Test, MisalignedSectionRejectedEvenWithValidChecksum) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const std::string path = TempPath("v2_misaligned.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  std::string contents = SlurpFile(path);
  // Knock section_offset[1] (bytes 48..55) off the 64-byte grid, then
  // forge a valid header checksum so the alignment validation itself —
  // not the checksum — must catch it.
  uint64_t offset1 = 0;
  std::memcpy(&offset1, contents.data() + 48, sizeof(offset1));
  offset1 += 4;
  std::memcpy(contents.data() + 48, &offset1, sizeof(offset1));
  RefreshHeaderChecksum(&contents);
  WriteBytes(path, contents);
  EXPECT_TRUE(ReadSignedGraphBinary(path).status().IsCorruption());
  EXPECT_TRUE(MmapSignedGraphBinary(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryV2Test, OffsetsCorruptionCaughtByDefaultMmapValidation) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(100, 600, 0.3, 6);
  const std::string path = TempPath("v2_bad_offsets.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  std::string contents = SlurpFile(path);
  // Corrupt a middle entry of the pos_offsets section (starts at 128) to
  // a huge value; keep the header intact. The payload checksum changes,
  // but the default mmap path doesn't read it — the O(n) offsets
  // monotonicity check must reject instead.
  const uint64_t bogus = ~0ULL;
  std::memcpy(contents.data() + 128 + 8 * 3, &bogus, sizeof(bogus));
  WriteBytes(path, contents);
  EXPECT_TRUE(MmapSignedGraphBinary(path).status().IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryV2Test, MappedResidentStaysUnderOnDiskSize) {
  // The zero-copy contract behind "RSS < 1.5x on-disk CSR": the mapping's
  // resident pages can never exceed the file size (they ARE file pages),
  // and a full adjacency walk still leaves it there — the copying reader
  // would add a second, heap-allocated copy on top.
  BsclOptions options;
  options.num_vertices = 20000;
  options.num_edges = 100000;
  options.seed = 3;
  const SignedGraph graph = GenerateBsclSignedGraph(options);
  const std::string path = TempPath("v2_resident.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  const uint64_t file_bytes = SlurpFile(path).size();

  Result<SignedGraph> mapped = MmapSignedGraphBinary(path);
  ASSERT_TRUE(mapped.ok());
  EXPECT_EQ(mapped.value().MappedBytes(), file_bytes);

  // Touch every adjacency row, then measure residency: still bounded by
  // the file itself (plus one page of rounding).
  uint64_t checksum = 0;
  for (VertexId v = 0; v < mapped.value().NumVertices(); ++v) {
    for (VertexId w : mapped.value().PositiveNeighbors(v)) checksum += w;
    for (VertexId w : mapped.value().NegativeNeighbors(v)) checksum += w;
  }
  EXPECT_GT(checksum, 0u);
  const size_t resident = MappedResidentBytes(
      mapped.value().MappedBase(), mapped.value().MappedBytes());
  EXPECT_GT(resident, 0u);
  EXPECT_LE(resident, file_bytes + 4096);
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/binary_io.h"

#include <cstdio>
#include <fstream>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/graph_io.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

std::string TempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

// fread-based slurp (istreambuf_iterator trips GCC 12's
// -Wnull-dereference false positive at -O2).
std::string SlurpFile(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  return contents;
}

TEST(BinaryIoTest, RoundTripSmall) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const std::string path = TempPath("roundtrip_small.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  Result<SignedGraph> reread = ReadSignedGraphBinary(path);
  ASSERT_TRUE(reread.ok()) << reread.status().ToString();
  EXPECT_EQ(SignedEdgeListToString(reread.value()),
            SignedEdgeListToString(graph));
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripRandomLarge) {
  const SignedGraph graph =
      testing_util::RandomSignedGraph(5000, 40000, 0.35, 7);
  const std::string path = TempPath("roundtrip_large.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  Result<SignedGraph> reread = ReadSignedGraphBinary(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().NumVertices(), graph.NumVertices());
  EXPECT_EQ(reread.value().NumPositiveEdges(), graph.NumPositiveEdges());
  EXPECT_EQ(reread.value().NumNegativeEdges(), graph.NumNegativeEdges());
  // Spot-check adjacency equality.
  for (VertexId v = 0; v < graph.NumVertices(); v += 97) {
    const auto a = graph.PositiveNeighbors(v);
    const auto b = reread.value().PositiveNeighbors(v);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], b[i]);
  }
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RoundTripEmptyAndEdgeless) {
  const std::string path = TempPath("roundtrip_empty.mbcg");
  SignedGraphBuilder builder(5);  // 5 isolated vertices
  const SignedGraph graph = std::move(builder).Build();
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  Result<SignedGraph> reread = ReadSignedGraphBinary(path);
  ASSERT_TRUE(reread.ok());
  EXPECT_EQ(reread.value().NumVertices(), 5u);
  EXPECT_EQ(reread.value().NumEdges(), 0u);
  std::remove(path.c_str());
}

TEST(BinaryIoTest, MissingFileIsIOError) {
  EXPECT_TRUE(
      ReadSignedGraphBinary("/nonexistent/g.mbcg").status().IsIOError());
}

TEST(BinaryIoTest, RejectsBadMagic) {
  const std::string path = TempPath("bad_magic.mbcg");
  std::ofstream(path) << "this is not a graph file at all";
  Result<SignedGraph> result = ReadSignedGraphBinary(path);
  EXPECT_TRUE(result.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, RejectsTruncation) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const std::string path = TempPath("truncated.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  // Truncate the file to half its size.
  std::string contents = SlurpFile(path);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<long>(contents.size() / 2));
  out.close();
  Result<SignedGraph> result = ReadSignedGraphBinary(path);
  EXPECT_TRUE(result.status().IsCorruption());
  std::remove(path.c_str());
}

TEST(BinaryIoTest, DetectsBitFlip) {
  const SignedGraph graph = testing_util::RandomSignedGraph(50, 200, 0.4, 3);
  const std::string path = TempPath("bitflip.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  std::string contents = SlurpFile(path);
  // Flip a bit in the middle of the edge payload.
  contents[contents.size() / 2] =
      static_cast<char>(contents[contents.size() / 2] ^ 0x10);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(contents.data(), static_cast<long>(contents.size()));
  out.close();
  Result<SignedGraph> result = ReadSignedGraphBinary(path);
  EXPECT_TRUE(result.status().IsCorruption());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/coloring.h"

#include <utility>
#include <vector>

#include <gtest/gtest.h>

#include "src/graph/cores.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

Graph FromSigned(const std::string& text) {
  return Graph::FromSignedIgnoringSigns(testing_util::FromText(text));
}

TEST(ColoringTest, PathNeedsTwoColors) {
  const Graph graph = FromSigned("0 1 1\n1 2 1\n2 3 1\n");
  EXPECT_EQ(GreedyColoringBound(graph), 2u);
}

TEST(ColoringTest, TriangleNeedsThree) {
  const Graph graph = FromSigned("0 1 1\n1 2 1\n0 2 1\n");
  EXPECT_EQ(GreedyColoringBound(graph), 3u);
}

TEST(ColoringTest, CompleteGraphNeedsN) {
  // The paper's Figure 3 point: ignoring signs, K6 needs 6 colors.
  const Graph graph =
      Graph::FromSignedIgnoringSigns(testing_util::Figure3Graph());
  EXPECT_EQ(GreedyColoringBound(graph), 6u);
}

TEST(ColoringTest, ColoringIsProper) {
  const SignedGraph signed_graph =
      testing_util::RandomSignedGraph(300, 1500, 0.3, 5);
  const Graph graph = Graph::FromSignedIgnoringSigns(signed_graph);
  std::vector<uint32_t> colors;
  const uint32_t used = GreedyColoring(graph, {}, &colors);
  EXPECT_GE(used, 1u);
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    EXPECT_LT(colors[v], used);
    for (VertexId u : graph.Neighbors(v)) {
      EXPECT_NE(colors[u], colors[v]);
    }
  }
}

TEST(ColoringTest, DefaultOrderBoundedByDegeneracyPlusOne) {
  const SignedGraph signed_graph =
      testing_util::RandomSignedGraph(400, 2500, 0.4, 9);
  const Graph graph = Graph::FromSignedIgnoringSigns(signed_graph);
  const DegeneracyResult degeneracy = DegeneracyDecompose(graph);
  EXPECT_LE(GreedyColoringBound(graph), degeneracy.degeneracy + 1);
}

TEST(ColoringTest, ExplicitOrderIsUsed) {
  const Graph graph = FromSigned("0 1 1\n1 2 1\n0 2 1\n2 3 1\n");
  std::vector<uint32_t> colors;
  const uint32_t used = GreedyColoring(graph, {3, 2, 1, 0}, &colors);
  EXPECT_GE(used, 3u);
  // 3 processed first gets color 0.
  EXPECT_EQ(colors[3], 0u);
}

TEST(ColoringTest, EmptyGraph) {
  EXPECT_EQ(GreedyColoringBound(Graph(0, {})), 0u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/graph/balance.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;

TEST(BalanceCheckTest, BalancedTwoCamps) {
  // Two all-positive camps joined by negative edges: balanced.
  const SignedGraph graph = FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  const BalanceCheck check = CheckGraphBalance(graph);
  ASSERT_TRUE(check.balanced);
  ASSERT_EQ(check.sides.size(), 4u);
  EXPECT_EQ(check.sides[0], check.sides[1]);
  EXPECT_EQ(check.sides[2], check.sides[3]);
  EXPECT_NE(check.sides[0], check.sides[2]);
  EXPECT_EQ(FrustrationCount(graph, check.sides), 0u);
}

TEST(BalanceCheckTest, UnbalancedTriangle) {
  // One negative edge in a triangle: classic unbalanced pattern.
  const SignedGraph graph = FromText("0 1 1\n1 2 1\n0 2 -1\n");
  const BalanceCheck check = CheckGraphBalance(graph);
  EXPECT_FALSE(check.balanced);
  // The witness cycle has odd negative-sign parity.
  ASSERT_GE(check.violating_cycle.size(), 3u);
  int negatives = 0;
  for (size_t i = 0; i < check.violating_cycle.size(); ++i) {
    const VertexId a = check.violating_cycle[i];
    const VertexId b =
        check.violating_cycle[(i + 1) % check.violating_cycle.size()];
    const auto sign = graph.EdgeSign(a, b);
    ASSERT_TRUE(sign.has_value()) << "witness is not a cycle";
    negatives += (*sign == Sign::kNegative);
  }
  EXPECT_EQ(negatives % 2, 1);
}

TEST(BalanceCheckTest, AllNegativeTriangleUnbalanced) {
  const SignedGraph graph = FromText("0 1 -1\n1 2 -1\n0 2 -1\n");
  EXPECT_FALSE(CheckGraphBalance(graph).balanced);
}

TEST(BalanceCheckTest, MultiComponent) {
  // A balanced component plus an unbalanced one.
  const SignedGraph graph = FromText(
      "0 1 1\n"
      "2 3 1\n3 4 1\n2 4 -1\n");
  EXPECT_FALSE(CheckGraphBalance(graph).balanced);
  // Both components balanced -> overall balanced.
  const SignedGraph ok = FromText("0 1 1\n2 3 -1\n");
  EXPECT_TRUE(CheckGraphBalance(ok).balanced);
}

TEST(BalanceCheckTest, EmptyAndEdgelessAreBalanced) {
  EXPECT_TRUE(CheckGraphBalance(SignedGraph()).balanced);
  SignedGraphBuilder builder(3);
  EXPECT_TRUE(CheckGraphBalance(std::move(builder).Build()).balanced);
}

TEST(SwitchSignsTest, SwitchingPreservesBalanceStatus) {
  const SignedGraph balanced = testing_util::Figure2Graph();
  std::vector<uint8_t> in_set(balanced.NumVertices(), 0);
  in_set[2] = in_set[5] = in_set[7] = 1;
  const SignedGraph switched = SwitchSigns(balanced, in_set);
  // Figure 2's graph is NOT globally balanced (it has unbalanced
  // triangles through v5's positive edges), so check invariance on a
  // balanced instance instead:
  const SignedGraph two_camps = FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  std::vector<uint8_t> subset(4, 0);
  subset[1] = subset[2] = 1;
  EXPECT_TRUE(CheckGraphBalance(SwitchSigns(two_camps, subset)).balanced);
  EXPECT_EQ(CheckGraphBalance(switched).balanced,
            CheckGraphBalance(balanced).balanced);
}

TEST(SwitchSignsTest, SwitchingTheCertifyingSidesMakesAllPositive) {
  const SignedGraph graph = FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  const BalanceCheck check = CheckGraphBalance(graph);
  ASSERT_TRUE(check.balanced);
  const SignedGraph switched = SwitchSigns(graph, check.sides);
  EXPECT_EQ(switched.NumNegativeEdges(), 0u);
  EXPECT_EQ(switched.NumPositiveEdges(), graph.NumEdges());
}

TEST(SwitchSignsTest, DoubleSwitchIsIdentity) {
  const SignedGraph graph = testing_util::RandomSignedGraph(80, 400, 0.4, 9);
  std::vector<uint8_t> subset(graph.NumVertices(), 0);
  for (VertexId v = 0; v < graph.NumVertices(); v += 3) subset[v] = 1;
  const SignedGraph twice = SwitchSigns(SwitchSigns(graph, subset), subset);
  EXPECT_EQ(twice.NumPositiveEdges(), graph.NumPositiveEdges());
  EXPECT_EQ(twice.NumNegativeEdges(), graph.NumNegativeEdges());
  graph.ForEachEdge([&twice](VertexId u, VertexId v, Sign sign) {
    EXPECT_EQ(twice.EdgeSign(u, v), sign);
  });
}

TEST(FrustrationTest, CountsViolations) {
  const SignedGraph graph = FromText("0 1 1\n1 2 -1\n0 2 1\n");
  // sides {0,0,0}: negative within -> 1 violation.
  EXPECT_EQ(FrustrationCount(graph, {0, 0, 0}), 1u);
  // sides {0,0,1}: (1,2)- across OK; (0,2)+ across -> violation.
  EXPECT_EQ(FrustrationCount(graph, {0, 0, 1}), 1u);
}

TEST(ComponentsTest, CountsAndSizes) {
  const SignedGraph graph = FromText("0 1 1\n1 2 -1\n3 4 1\n");
  SignedGraphBuilder with_isolated(6);
  graph.ForEachEdge([&](VertexId u, VertexId v, Sign s) {
    with_isolated.AddEdge(u, v, s);
  });
  const SignedGraph g = std::move(with_isolated).Build();
  const ConnectedComponents cc = ComputeConnectedComponents(g);
  EXPECT_EQ(cc.num_components, 3u);
  EXPECT_EQ(cc.component[0], cc.component[2]);
  EXPECT_EQ(cc.component[3], cc.component[4]);
  EXPECT_NE(cc.component[0], cc.component[3]);
  EXPECT_EQ(cc.sizes[cc.LargestComponent()], 3u);
}

TEST(ComponentsTest, SingleComponent) {
  const SignedGraph graph = testing_util::Figure2Graph();
  const ConnectedComponents cc = ComputeConnectedComponents(graph);
  EXPECT_EQ(cc.num_components, 1u);
  EXPECT_EQ(cc.sizes[0], graph.NumVertices());
}

}  // namespace
}  // namespace mbc

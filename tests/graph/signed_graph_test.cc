// Copyright 2026 The balanced-clique Authors.
#include "src/graph/signed_graph.h"

#include <vector>

#include <gtest/gtest.h>

#include "src/graph/signed_graph_builder.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;

TEST(SignedGraphTest, EmptyGraph) {
  SignedGraph graph = SignedGraphBuilder(0).Build();
  EXPECT_EQ(graph.NumVertices(), 0u);
  EXPECT_EQ(graph.NumEdges(), 0u);
  EXPECT_DOUBLE_EQ(graph.NegativeEdgeRatio(), 0.0);
}

TEST(SignedGraphTest, BasicAccessors) {
  SignedGraph graph = FromText("0 1 1\n0 2 -1\n1 2 -1\n2 3 1\n");
  EXPECT_EQ(graph.NumVertices(), 4u);
  EXPECT_EQ(graph.NumEdges(), 4u);
  EXPECT_EQ(graph.NumPositiveEdges(), 2u);
  EXPECT_EQ(graph.NumNegativeEdges(), 2u);
  EXPECT_DOUBLE_EQ(graph.NegativeEdgeRatio(), 0.5);

  EXPECT_EQ(graph.PositiveDegree(0), 1u);
  EXPECT_EQ(graph.NegativeDegree(0), 1u);
  EXPECT_EQ(graph.Degree(0), 2u);
  EXPECT_EQ(graph.Degree(2), 3u);
  EXPECT_EQ(graph.Degree(3), 1u);
}

TEST(SignedGraphTest, AdjacencyIsSortedAndSymmetric) {
  SignedGraph graph = FromText("3 1 1\n3 0 1\n3 2 -1\n1 0 -1\n");
  const auto pos3 = graph.PositiveNeighbors(3);
  ASSERT_EQ(pos3.size(), 2u);
  EXPECT_EQ(pos3[0], 0u);
  EXPECT_EQ(pos3[1], 1u);
  // Symmetry.
  EXPECT_EQ(graph.PositiveNeighbors(0).size(), 1u);
  EXPECT_EQ(graph.PositiveNeighbors(0)[0], 3u);
  EXPECT_EQ(graph.NegativeNeighbors(2).size(), 1u);
  EXPECT_EQ(graph.NegativeNeighbors(2)[0], 3u);
}

TEST(SignedGraphTest, EdgeQueries) {
  SignedGraph graph = FromText("0 1 1\n1 2 -1\n");
  EXPECT_TRUE(graph.HasPositiveEdge(0, 1));
  EXPECT_TRUE(graph.HasPositiveEdge(1, 0));
  EXPECT_FALSE(graph.HasNegativeEdge(0, 1));
  EXPECT_TRUE(graph.HasNegativeEdge(2, 1));
  EXPECT_FALSE(graph.HasPositiveEdge(0, 2));
  EXPECT_EQ(graph.EdgeSign(0, 1), Sign::kPositive);
  EXPECT_EQ(graph.EdgeSign(1, 2), Sign::kNegative);
  EXPECT_EQ(graph.EdgeSign(0, 2), std::nullopt);
}

TEST(SignedGraphTest, ForEachEdgeVisitsOncePerEdge) {
  SignedGraph graph = FromText("0 1 1\n1 2 -1\n0 2 1\n2 3 -1\n");
  int positive = 0;
  int negative = 0;
  graph.ForEachEdge([&](VertexId u, VertexId v, Sign sign) {
    EXPECT_LT(u, v);
    (sign == Sign::kPositive ? positive : negative) += 1;
  });
  EXPECT_EQ(positive, 2);
  EXPECT_EQ(negative, 2);
}

TEST(SignedGraphTest, BuilderDeduplicatesSameSign) {
  SignedGraphBuilder builder;
  builder.AddEdge(0, 1, Sign::kPositive);
  builder.AddEdge(1, 0, Sign::kPositive);
  builder.AddEdge(0, 1, Sign::kPositive);
  SignedGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.PositiveDegree(0), 1u);
}

TEST(SignedGraphTest, BuilderConflictPolicyKeepNegative) {
  SignedGraphBuilder builder;
  builder.set_sign_conflict_policy(
      SignedGraphBuilder::SignConflictPolicy::kKeepNegative);
  builder.AddEdge(0, 1, Sign::kPositive);
  builder.AddEdge(0, 1, Sign::kNegative);
  SignedGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_TRUE(graph.HasNegativeEdge(0, 1));
  EXPECT_FALSE(graph.HasPositiveEdge(0, 1));
}

TEST(SignedGraphTest, BuilderConflictPolicyDropEdge) {
  SignedGraphBuilder builder;
  builder.set_sign_conflict_policy(
      SignedGraphBuilder::SignConflictPolicy::kDropEdge);
  builder.AddEdge(0, 1, Sign::kPositive);
  builder.AddEdge(0, 1, Sign::kNegative);
  builder.AddEdge(1, 2, Sign::kPositive);
  SignedGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.NumEdges(), 1u);
  EXPECT_EQ(graph.EdgeSign(0, 1), std::nullopt);
}

TEST(SignedGraphTest, BuildValidatedReportsConflict) {
  SignedGraphBuilder builder;
  builder.AddEdge(0, 1, Sign::kPositive);
  builder.AddEdge(0, 1, Sign::kNegative);
  Result<SignedGraph> result = std::move(builder).BuildValidated();
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsCorruption());
}

TEST(SignedGraphDeathTest, SelfLoopRejected) {
  SignedGraphBuilder builder;
  EXPECT_DEATH(builder.AddEdge(3, 3, Sign::kPositive), "self-loop");
}

TEST(SignedGraphTest, IsolatedVerticesPreserved) {
  SignedGraphBuilder builder(10);
  builder.AddEdge(0, 1, Sign::kPositive);
  SignedGraph graph = std::move(builder).Build();
  EXPECT_EQ(graph.NumVertices(), 10u);
  EXPECT_EQ(graph.Degree(9), 0u);
}

TEST(SignedGraphTest, InducedSubgraphKeepsInternalEdges) {
  // Path 0 -+ 1 -- 2 +- 3 plus chord (0,2) negative.
  SignedGraph graph = FromText("0 1 1\n1 2 -1\n2 3 1\n0 2 -1\n");
  const std::vector<VertexId> selection = {0, 2, 3};
  SignedGraph::InducedResult induced = graph.InducedSubgraph(selection);
  EXPECT_EQ(induced.graph.NumVertices(), 3u);
  EXPECT_EQ(induced.to_original, selection);
  // Edges kept: (0,2) negative -> new (0,1); (2,3) positive -> new (1,2).
  EXPECT_EQ(induced.graph.NumEdges(), 2u);
  EXPECT_TRUE(induced.graph.HasNegativeEdge(0, 1));
  EXPECT_TRUE(induced.graph.HasPositiveEdge(1, 2));
  EXPECT_EQ(induced.graph.EdgeSign(0, 2), std::nullopt);
}

TEST(SignedGraphTest, InducedSubgraphOfNothingIsEmpty) {
  SignedGraph graph = FromText("0 1 1\n");
  SignedGraph::InducedResult induced = graph.InducedSubgraph({});
  EXPECT_EQ(induced.graph.NumVertices(), 0u);
}

TEST(SignedGraphTest, MemoryBytesScalesWithEdges) {
  SignedGraph small = testing_util::RandomSignedGraph(100, 200, 0.3, 1);
  SignedGraph large = testing_util::RandomSignedGraph(100, 2000, 0.3, 1);
  EXPECT_GT(large.MemoryBytes(), small.MemoryBytes());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Unit tests for the streaming mutation layer: patch-merge correctness
// against from-scratch builds, op classification, validation atomicity,
// fingerprint lineage, net-drift overlay accounting and compaction.
#include "src/graph/delta_graph.h"

#include <map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/fingerprint.h"
#include "src/graph/signed_graph.h"
#include "src/graph/signed_graph_builder.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Sign>;

SignedGraph Materialize(VertexId n, const EdgeMap& edges) {
  SignedGraphBuilder builder(n);
  for (const auto& [key, sign] : edges) {
    builder.AddEdge(key.first, key.second, sign);
  }
  return std::move(builder).Build();
}

void ExpectSameGraph(const SignedGraph& got, const SignedGraph& want) {
  ASSERT_EQ(got.NumVertices(), want.NumVertices());
  ASSERT_EQ(got.NumEdges(), want.NumEdges());
  for (VertexId v = 0; v < want.NumVertices(); ++v) {
    const auto got_pos = got.PositiveNeighbors(v);
    const auto want_pos = want.PositiveNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(got_pos.begin(), got_pos.end()),
              std::vector<VertexId>(want_pos.begin(), want_pos.end()))
        << "positive row of " << v;
    const auto got_neg = got.NegativeNeighbors(v);
    const auto want_neg = want.NegativeNeighbors(v);
    ASSERT_EQ(std::vector<VertexId>(got_neg.begin(), got_neg.end()),
              std::vector<VertexId>(want_neg.begin(), want_neg.end()))
        << "negative row of " << v;
  }
}

std::pair<VertexId, VertexId> Key(VertexId u, VertexId v) {
  return u < v ? std::make_pair(u, v) : std::make_pair(v, u);
}

TEST(DeltaGraphTest, AddRemoveFlipMatchesFromScratchBuild) {
  EdgeMap edges = {{{0, 1}, Sign::kPositive},
                   {{1, 2}, Sign::kPositive},
                   {{2, 3}, Sign::kNegative},
                   {{3, 4}, Sign::kPositive}};
  SignedGraph head = Materialize(6, edges);
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());

  MutationBatch batch;
  batch.add.push_back({0, 4, Sign::kNegative});   // new edge
  batch.add.push_back({1, 2, Sign::kNegative});   // flip
  batch.add.push_back({0, 1, Sign::kPositive});   // no-op (same sign)
  batch.remove.push_back({2, 3});                 // delete
  batch.remove.push_back({4, 5});                 // no-op (absent)

  auto patch = log.Apply(head, batch, DeltaBudget{});
  ASSERT_TRUE(patch.ok()) << patch.status().ToString();
  EXPECT_EQ(patch.value().stats.added, 1u);
  EXPECT_EQ(patch.value().stats.flipped, 1u);
  EXPECT_EQ(patch.value().stats.removed, 1u);
  EXPECT_EQ(patch.value().stats.noops, 2u);
  EXPECT_EQ(patch.value().stats.version, 1u);
  EXPECT_EQ(log.version(), 1u);

  edges[Key(0, 4)] = Sign::kNegative;
  edges[Key(1, 2)] = Sign::kNegative;
  edges.erase(Key(2, 3));
  ExpectSameGraph(patch.value().graph, Materialize(6, edges));

  // Dirty region: endpoints of the three effective ops, sorted unique.
  EXPECT_EQ(patch.value().stats.dirty,
            (std::vector<VertexId>{0, 1, 2, 3, 4}));
  // Skeleton edits exclude the flip.
  EXPECT_EQ(patch.value().stats.skeleton_adds,
            (std::vector<std::pair<VertexId, VertexId>>{{0, 4}}));
  EXPECT_EQ(patch.value().stats.skeleton_removes,
            (std::vector<std::pair<VertexId, VertexId>>{{2, 3}}));
}

TEST(DeltaGraphTest, AllNoopBatchLeavesLineageUntouched) {
  EdgeMap edges = {{{0, 1}, Sign::kPositive}};
  SignedGraph head = Materialize(3, edges);
  const uint64_t fp = FingerprintSignedGraph(head);
  DeltaSignedGraph log(fp, 0, head.NumEdges());

  MutationBatch batch;
  batch.add.push_back({0, 1, Sign::kPositive});
  batch.remove.push_back({1, 2});
  auto patch = log.Apply(head, batch, DeltaBudget{});
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch.value().stats.noops, 2u);
  EXPECT_EQ(patch.value().stats.version, 0u);
  EXPECT_EQ(patch.value().stats.fingerprint, fp);
  EXPECT_EQ(log.version(), 0u);
  EXPECT_EQ(log.overlay_entries(), 0u);
}

TEST(DeltaGraphTest, ValidationRejectsBeforeAnyStateChange) {
  SignedGraph head = Materialize(4, {{{0, 1}, Sign::kPositive}});
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());
  const uint64_t fp = log.fingerprint();

  MutationBatch self_loop;
  self_loop.add.push_back({2, 2, Sign::kPositive});
  EXPECT_FALSE(log.Apply(head, self_loop, DeltaBudget{}).ok());

  MutationBatch out_of_range;
  out_of_range.add.push_back({0, 9, Sign::kPositive});
  EXPECT_FALSE(log.Apply(head, out_of_range, DeltaBudget{}).ok());

  MutationBatch duplicate;
  duplicate.add.push_back({1, 2, Sign::kPositive});
  duplicate.remove.push_back({2, 1});
  EXPECT_FALSE(log.Apply(head, duplicate, DeltaBudget{}).ok());

  // A rejected batch must not advance the lineage or grow the log.
  EXPECT_EQ(log.version(), 0u);
  EXPECT_EQ(log.fingerprint(), fp);
  EXPECT_EQ(log.overlay_entries(), 0u);
}

TEST(DeltaGraphTest, DerivedFingerprintIsDeterministicAndOrderSensitive) {
  SignedGraph head = Materialize(5, {{{0, 1}, Sign::kPositive}});
  const uint64_t base_fp = FingerprintSignedGraph(head);

  const auto run = [&](const std::vector<MutationEdge>& adds) {
    DeltaSignedGraph log(base_fp, 0, head.NumEdges());
    MutationBatch batch;
    batch.add = adds;
    auto patch = log.Apply(head, batch, DeltaBudget{});
    EXPECT_TRUE(patch.ok());
    return patch.value().stats.fingerprint;
  };

  const uint64_t fp1 = run({{1, 2, Sign::kNegative}, {2, 3, Sign::kPositive}});
  const uint64_t fp2 = run({{2, 3, Sign::kPositive}, {1, 2, Sign::kNegative}});
  // The fold is over key-sorted effective ops, so op order within a batch
  // does not matter...
  EXPECT_EQ(fp1, fp2);
  // ...but the lineage is a version tag, not a content address.
  EXPECT_NE(fp1, base_fp);
}

TEST(DeltaGraphTest, OverlayTracksNetDriftNotOpVolume) {
  EdgeMap edges = {{{0, 1}, Sign::kPositive}, {{1, 2}, Sign::kNegative}};
  SignedGraph head = Materialize(4, edges);
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());

  // A permissive budget keeps the drift un-compacted on this tiny base
  // (the default ratio would fold it straight into the CSR).
  DeltaBudget loose;
  loose.compact_ratio = 100.0;
  MutationBatch add;
  add.add.push_back({2, 3, Sign::kPositive});
  auto patch1 = log.Apply(head, add, loose);
  ASSERT_TRUE(patch1.ok());
  EXPECT_EQ(log.overlay_entries(), 1u);

  // Removing the just-added edge restores the base state: the overlay
  // entry is erased, not stacked.
  MutationBatch remove;
  remove.remove.push_back({2, 3});
  auto patch2 = log.Apply(patch1.value().graph, remove, loose);
  ASSERT_TRUE(patch2.ok());
  EXPECT_EQ(log.overlay_entries(), 0u);
  EXPECT_EQ(log.delta_bytes(), 0u);
  // The version still advanced twice — lineage is monotone even when the
  // content returns to the base.
  EXPECT_EQ(log.version(), 2u);
}

TEST(DeltaGraphTest, BudgetTriggersCompactionToContentFingerprint) {
  EdgeMap edges;
  for (VertexId v = 0; v + 1 < 20; ++v) edges[{v, v + 1}] = Sign::kPositive;
  SignedGraph head = Materialize(20, edges);
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());

  DeltaBudget tight;
  tight.max_delta_bytes = 1;  // any drift compacts
  MutationBatch batch;
  batch.add.push_back({0, 5, Sign::kNegative});
  auto patch = log.Apply(head, batch, tight);
  ASSERT_TRUE(patch.ok());
  EXPECT_TRUE(patch.value().stats.compacted);
  EXPECT_EQ(log.overlay_entries(), 0u);
  EXPECT_EQ(patch.value().stats.fingerprint,
            FingerprintSignedGraph(patch.value().graph));
  // The patched head carries the hint so GraphStore skips the O(m) pass.
  ASSERT_TRUE(patch.value().graph.FingerprintHint().has_value());
  EXPECT_EQ(*patch.value().graph.FingerprintHint(),
            patch.value().stats.fingerprint);
}

TEST(DeltaGraphTest, ForcedCompactConvergesWithFreshLoadFingerprint) {
  EdgeMap edges = {{{0, 1}, Sign::kPositive}, {{1, 2}, Sign::kNegative}};
  SignedGraph head = Materialize(5, edges);
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());

  // Keep the drift un-compacted so Compact has real work (the default
  // ratio would auto-compact on a 2-edge base and pre-empt the test).
  DeltaBudget loose;
  loose.compact_ratio = 100.0;
  MutationBatch batch;
  batch.add.push_back({3, 4, Sign::kPositive});
  auto patch = log.Apply(head, batch, loose);
  ASSERT_TRUE(patch.ok());
  const uint64_t derived = patch.value().stats.fingerprint;

  const auto compacted = log.Compact(patch.value().graph);
  EXPECT_TRUE(compacted.changed);
  EXPECT_NE(compacted.fingerprint, derived);

  // Same logical graph built from scratch: identical content fingerprint.
  edges[Key(3, 4)] = Sign::kPositive;
  EXPECT_EQ(compacted.fingerprint,
            FingerprintSignedGraph(Materialize(5, edges)));

  // Compacting twice is a no-op.
  EXPECT_FALSE(log.Compact(patch.value().graph).changed);
}

TEST(DeltaGraphTest, AddCliqueBoundCoversCommonNeighborhood) {
  // 0 and 1 share common neighbors {2, 3} (mixed signs); adding the edge
  // {0, 1} can create cliques of size at most 2 + 2.
  EdgeMap edges = {{{0, 2}, Sign::kPositive}, {{1, 2}, Sign::kPositive},
                   {{0, 3}, Sign::kNegative}, {{1, 3}, Sign::kPositive},
                   {{0, 4}, Sign::kPositive}};
  SignedGraph head = Materialize(6, edges);
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());
  MutationBatch batch;
  batch.add.push_back({0, 1, Sign::kPositive});
  auto patch = log.Apply(head, batch, DeltaBudget{});
  ASSERT_TRUE(patch.ok());
  EXPECT_EQ(patch.value().stats.add_clique_bound, 4u);

  // Removal-only batches cannot create cliques.
  MutationBatch remove;
  remove.remove.push_back({0, 2});
  auto patch2 = log.Apply(patch.value().graph, remove, DeltaBudget{});
  ASSERT_TRUE(patch2.ok());
  EXPECT_EQ(patch2.value().stats.add_clique_bound, 0u);
}

TEST(DeltaGraphTest, RandomizedPatchMergeMatchesFromScratch) {
  const VertexId n = 40;
  SignedGraph base = testing_util::RandomSignedGraph(n, 120, 0.3, 7);
  EdgeMap edges;
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : base.PositiveNeighbors(u)) {
      if (u < v) edges[{u, v}] = Sign::kPositive;
    }
    for (const VertexId v : base.NegativeNeighbors(u)) {
      if (u < v) edges[{u, v}] = Sign::kNegative;
    }
  }
  SignedGraph head = Materialize(n, edges);
  DeltaSignedGraph log(FingerprintSignedGraph(head), 0, head.NumEdges());

  uint64_t rng = 0x9e3779b97f4a7c15ull;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  for (int round = 0; round < 30; ++round) {
    MutationBatch batch;
    std::map<std::pair<VertexId, VertexId>, bool> used;
    const int ops = 1 + static_cast<int>(next() % 6);
    for (int k = 0; k < ops; ++k) {
      VertexId u = static_cast<VertexId>(next() % n);
      VertexId v = static_cast<VertexId>(next() % n);
      if (u == v) continue;
      const auto key = Key(u, v);
      if (used.count(key) != 0) continue;
      used[key] = true;
      if (next() % 3 == 0) {
        batch.remove.push_back(key);
        edges.erase(key);
      } else {
        const Sign sign = next() % 2 == 0 ? Sign::kPositive : Sign::kNegative;
        batch.add.push_back({key.first, key.second, sign});
        edges[key] = sign;
      }
    }
    auto patch = log.Apply(head, batch, DeltaBudget{});
    ASSERT_TRUE(patch.ok()) << patch.status().ToString();
    if (patch.value().graph.NumVertices() == 0) {
      continue;  // all-noop batch: head unchanged, no patch minted
    }
    SignedGraph want = Materialize(n, edges);
    ExpectSameGraph(patch.value().graph, want);
    head = std::move(patch.value().graph);
  }
}

TEST(ParseMutationEdgesTest, ParsesSignedAndUnsignedLists) {
  MutationBatch batch;
  ASSERT_TRUE(ParseMutationEdges("0 1 +;2 3 -1; 4 5 1 ", true, &batch).ok());
  ASSERT_EQ(batch.add.size(), 3u);
  EXPECT_EQ(batch.add[0].u, 0u);
  EXPECT_EQ(batch.add[0].sign, Sign::kPositive);
  EXPECT_EQ(batch.add[1].sign, Sign::kNegative);
  EXPECT_EQ(batch.add[2].sign, Sign::kPositive);

  ASSERT_TRUE(ParseMutationEdges("7 8;9 10", false, &batch).ok());
  ASSERT_EQ(batch.remove.size(), 2u);
  EXPECT_EQ(batch.remove[1], (std::pair<VertexId, VertexId>{9, 10}));
}

TEST(ParseMutationEdgesTest, RejectsMalformedInput) {
  MutationBatch batch;
  EXPECT_FALSE(ParseMutationEdges("0 1", true, &batch).ok());       // no sign
  EXPECT_FALSE(ParseMutationEdges("0 1 *", true, &batch).ok());    // bad sign
  EXPECT_FALSE(ParseMutationEdges("0 1 + 2", true, &batch).ok());  // trailing
  EXPECT_FALSE(ParseMutationEdges("0 1 +;x 2 -", true, &batch).ok());
  EXPECT_FALSE(ParseMutationEdges("0 1 -", false, &batch).ok());  // sign given
  EXPECT_FALSE(ParseMutationEdges("", true, &batch).ok());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/gmbc/gmbc.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

void CheckResult(const SignedGraph& graph, const GeneralizedMbcResult& result) {
  ASSERT_EQ(result.cliques.size(), static_cast<size_t>(result.beta) + 1);
  size_t previous = SIZE_MAX;
  for (uint32_t tau = 0; tau <= result.beta; ++tau) {
    const BalancedClique& clique = result.cliques[tau];
    EXPECT_TRUE(IsBalancedClique(graph, clique)) << "tau=" << tau;
    EXPECT_TRUE(clique.SatisfiesThreshold(tau)) << "tau=" << tau;
    // Sizes non-increasing in tau when read upward == non-decreasing when
    // read downward.
    EXPECT_LE(clique.size(), previous == SIZE_MAX ? SIZE_MAX : previous);
    previous = clique.size();
  }
}

TEST(GMbcTest, Figure2AllThresholds) {
  const SignedGraph graph = Figure2Graph();
  const GeneralizedMbcResult result = GeneralizedMbc(graph);
  EXPECT_EQ(result.beta, 3u);
  CheckResult(graph, result);
  EXPECT_EQ(result.cliques[0].size(), 6u);
  EXPECT_EQ(result.cliques[2].size(), 6u);
  EXPECT_EQ(result.cliques[3].size(), 6u);
}

TEST(GMbcStarTest, Figure2AllThresholds) {
  const SignedGraph graph = Figure2Graph();
  const GeneralizedMbcResult result = GeneralizedMbcStar(graph);
  EXPECT_EQ(result.beta, 3u);
  CheckResult(graph, result);
  EXPECT_EQ(result.cliques[3].size(), 6u);
}

TEST(GMbcTest, StarAndPlainAgreeRandomized) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 65, 0.5, seed);
    const GeneralizedMbcResult plain = GeneralizedMbc(graph);
    const GeneralizedMbcResult star = GeneralizedMbcStar(graph);
    ASSERT_EQ(plain.beta, star.beta) << "seed=" << seed;
    for (uint32_t tau = 0; tau <= plain.beta; ++tau) {
      EXPECT_EQ(plain.cliques[tau].size(), star.cliques[tau].size())
          << "seed=" << seed << " tau=" << tau;
    }
    CheckResult(graph, plain);
    CheckResult(graph, star);
  }
}

TEST(GMbcTest, MatchesBruteForcePerTau) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const SignedGraph graph = RandomSignedGraph(14, 55, 0.5, seed);
    const GeneralizedMbcResult result = GeneralizedMbcStar(graph);
    EXPECT_EQ(result.beta, BruteForcePolarizationFactor(graph));
    for (uint32_t tau = 0; tau <= result.beta; ++tau) {
      EXPECT_EQ(result.cliques[tau].size(),
                BruteForceMaxBalancedClique(graph, tau).size())
          << "seed=" << seed << " tau=" << tau;
    }
  }
}

TEST(GMbcTest, DistinctCliqueCountAtMostBetaPlusOne) {
  const SignedGraph base = RandomSignedGraph(800, 4000, 0.4, 9);
  const SignedGraph graph = PlantBalancedCliques(base, {{5, 6}, {2, 9}}, 4);
  const GeneralizedMbcResult result = GeneralizedMbcStar(graph);
  const size_t distinct = result.NumDistinctCliques();
  EXPECT_GE(distinct, 1u);
  EXPECT_LE(distinct, static_cast<size_t>(result.beta) + 1);
  CheckResult(graph, result);
}

TEST(GMbcTest, EmptyGraph) {
  const GeneralizedMbcResult result = GeneralizedMbcStar(SignedGraph());
  EXPECT_TRUE(result.cliques.empty());
}

}  // namespace
}  // namespace mbc

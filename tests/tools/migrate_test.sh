#!/usr/bin/env bash
# Copyright 2026 The balanced-clique Authors.
#
# End-to-end test of `mbc_cli migrate`: a corpus of v1 binaries is
# rewritten to v2 (glob input, round-trip fingerprint check), already-v2
# and non-binary files are skipped, and --in-place replaces atomically.
#
#   migrate_test.sh <mbc_cli>
set -u

MBC_CLI="$1"

WORK="$(mktemp -d)"
cleanup() { rm -rf "$WORK"; }
trap cleanup EXIT
cd "$WORK" || exit 1

fail() { echo "FAIL: $1"; exit 1; }

# A small signed graph with both edge signs.
cat > g.txt <<'EOF'
0 1 1
0 2 1
1 2 1
2 3 -1
3 4 1
1 4 -1
EOF

mkdir corpus
"$MBC_CLI" convert --graph g.txt --out corpus/a.mbcg --format v1 \
  > /dev/null || fail "convert a (v1)"
"$MBC_CLI" convert --graph g.txt --out corpus/b.mbcg --format v1 \
  > /dev/null || fail "convert b (v1)"
"$MBC_CLI" convert --graph g.txt --out corpus/c.mbcg --format v2 \
  > /dev/null || fail "convert c (v2)"
echo "not a graph" > corpus/junk.mbcg

# Copy-mode migration: v1 files gain a .v2 sibling, v2 and junk are
# skipped, nothing fails.
"$MBC_CLI" migrate --input 'corpus/*.mbcg' > migrate.log \
  || fail "migrate exited non-zero"
grep -q '# migrated 2, skipped 2, failed 0' migrate.log \
  || fail "unexpected summary: $(tail -1 migrate.log)"
[ -f corpus/a.mbcg.v2 ] || fail "a.mbcg.v2 missing"
[ -f corpus/b.mbcg.v2 ] || fail "b.mbcg.v2 missing"
[ ! -f corpus/c.mbcg.v2 ] || fail "v2 input was migrated"
[ ! -f corpus/junk.mbcg.v2 ] || fail "junk was migrated"

# The migrated file must load and convert back to the identical edge
# list. (mbc_cli sniffs binaries by extension, so give the copy one.)
cp corpus/a.mbcg.v2 migrated_a.mbcg
"$MBC_CLI" convert --graph migrated_a.mbcg --out rt_v2.txt > /dev/null \
  || fail "migrated file does not load"
"$MBC_CLI" convert --graph corpus/a.mbcg --out rt_v1.txt > /dev/null \
  || fail "v1 file does not load"
diff -q rt_v1.txt rt_v2.txt > /dev/null \
  || fail "migrated graph differs from the v1 original"

# The log's fingerprint lines for identical content must agree.
FPS="$(grep -o 'fp=[0-9a-f]*' migrate.log | sort -u | wc -l)"
[ "$FPS" = "1" ] || fail "expected one distinct fingerprint, got $FPS"

# In-place migration: the path is replaced, a re-run skips it as v2.
"$MBC_CLI" migrate --input 'corpus/b.mbcg' --in-place true > inplace.log \
  || fail "in-place migrate exited non-zero"
grep -q 'migrated corpus/b.mbcg -> corpus/b.mbcg ' inplace.log \
  || fail "in-place did not rewrite the original path"
"$MBC_CLI" migrate --input 'corpus/b.mbcg' > rerun.log \
  || fail "re-run exited non-zero"
grep -q 'skip     corpus/b.mbcg (already v2)' rerun.log \
  || fail "re-run did not skip the migrated file"

# A glob with no matches is an error, not a silent success.
if "$MBC_CLI" migrate --input 'corpus/*.nope' > /dev/null 2>&1; then
  fail "empty glob should exit non-zero"
fi

echo "PASS"
exit 0

// Copyright 2026 The balanced-clique Authors.
#include "src/dichromatic/dichromatic_graph.h"

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(DichromaticGraphTest, SidesAndEdges) {
  DichromaticGraph graph(5);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kLeft);
  graph.SetSide(2, Side::kRight);
  graph.SetSide(3, Side::kRight);
  graph.SetSide(4, Side::kRight);
  EXPECT_TRUE(graph.IsLeft(0));
  EXPECT_FALSE(graph.IsLeft(2));
  EXPECT_EQ(graph.GetSide(1), Side::kLeft);
  EXPECT_EQ(graph.GetSide(4), Side::kRight);
  EXPECT_EQ(graph.LeftMask().Count(), 2u);

  graph.AddEdge(0, 2);
  graph.AddEdge(0, 1);
  EXPECT_TRUE(graph.HasEdge(0, 2));
  EXPECT_TRUE(graph.HasEdge(2, 0));
  EXPECT_FALSE(graph.HasEdge(1, 2));
  EXPECT_EQ(graph.AdjacencyOf(0).Count(), 2u);
}

TEST(DichromaticGraphTest, SideCanBeReassigned) {
  DichromaticGraph graph(2);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(0, Side::kRight);
  EXPECT_FALSE(graph.IsLeft(0));
}

TEST(DichromaticGraphTest, DegreeWithin) {
  DichromaticGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(0, 3);
  Bitset within(4);
  within.Set(1);
  within.Set(3);
  EXPECT_EQ(graph.DegreeWithin(0, within), 2u);
  within.Reset(3);
  EXPECT_EQ(graph.DegreeWithin(0, within), 1u);
}

TEST(DichromaticGraphTest, EdgesWithin) {
  DichromaticGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(2, 3);
  Bitset subset(4);
  subset.Set(0);
  subset.Set(1);
  subset.Set(2);
  EXPECT_EQ(graph.EdgesWithin(subset), 2u);
  EXPECT_EQ(graph.EdgesWithin(graph.AllVertices()), 3u);
}

TEST(DichromaticGraphTest, AllVertices) {
  DichromaticGraph graph(7);
  EXPECT_EQ(graph.AllVertices().Count(), 7u);
}

TEST(DichromaticGraphTest, MemoryBytesNonZero) {
  DichromaticGraph graph(100);
  EXPECT_GT(graph.MemoryBytes(), 0u);
}

// The split adjacency rows must always partition the plain adjacency row
// by the neighbor's side.
TEST(DichromaticGraphTest, SplitAdjacencyPartitionsNeighborhood) {
  DichromaticGraph graph(6);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kLeft);
  graph.SetSide(2, Side::kRight);
  graph.SetSide(3, Side::kRight);
  graph.SetSide(4, Side::kLeft);
  graph.AddEdge(0, 1);
  graph.AddEdge(0, 2);
  graph.AddEdge(0, 3);
  graph.AddEdge(0, 4);
  graph.AddEdge(1, 2);

  EXPECT_EQ(graph.LeftAdjacencyOf(0).ToVector(),
            (std::vector<uint32_t>{1, 4}));
  EXPECT_EQ(graph.RightAdjacencyOf(0).ToVector(),
            (std::vector<uint32_t>{2, 3}));
  EXPECT_EQ(graph.LeftAdjacencyOf(2).ToVector(),
            (std::vector<uint32_t>{0, 1}));
  EXPECT_TRUE(graph.RightAdjacencyOf(2).None());
  for (uint32_t v = 0; v < 6; ++v) {
    EXPECT_EQ(graph.LeftAdjacencyOf(v) | graph.RightAdjacencyOf(v),
              graph.AdjacencyOf(v))
        << v;
    EXPECT_FALSE(graph.LeftAdjacencyOf(v).Intersects(
        graph.RightAdjacencyOf(v)))
        << v;
  }
}

// Relabelling an already-connected vertex must migrate its bit between
// every neighbor's split rows (the SetSide fix-up path).
TEST(DichromaticGraphTest, SplitAdjacencyFollowsSideReassignment) {
  DichromaticGraph graph(4);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  // All vertices start as R-vertices: edges land in the R-rows.
  EXPECT_TRUE(graph.RightAdjacencyOf(0).Test(1));
  EXPECT_TRUE(graph.LeftAdjacencyOf(0).None());

  graph.SetSide(1, Side::kLeft);
  EXPECT_TRUE(graph.LeftAdjacencyOf(0).Test(1));
  EXPECT_FALSE(graph.RightAdjacencyOf(0).Test(1));
  EXPECT_TRUE(graph.LeftAdjacencyOf(2).Test(1));

  graph.SetSide(1, Side::kRight);
  EXPECT_FALSE(graph.LeftAdjacencyOf(0).Test(1));
  EXPECT_TRUE(graph.RightAdjacencyOf(0).Test(1));
  // Redundant relabel is a no-op.
  graph.SetSide(1, Side::kRight);
  EXPECT_TRUE(graph.RightAdjacencyOf(0).Test(1));
}

// Reset must clear the split rows of the retained storage along with the
// plain rows (the BuildInto refill contract).
TEST(DichromaticGraphTest, ResetClearsSplitRows) {
  DichromaticGraph graph(5);
  graph.SetSide(1, Side::kLeft);
  graph.AddEdge(0, 1);
  graph.Reset(5);
  EXPECT_TRUE(graph.LeftAdjacencyOf(0).None());
  EXPECT_TRUE(graph.RightAdjacencyOf(0).None());
  EXPECT_FALSE(graph.HasEdge(0, 1));
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Direct property test of Theorem 2, the paper's core reduction: the
// maximum balanced clique size of G under constraint τ equals
// max over u of δ(g_u, τ), where g_u is u's dichromatic network under any
// total ordering and δ is the maximum dichromatic clique size through u.
#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/core/brute_force.h"
#include "src/core/mdc_solver.h"
#include "src/dichromatic/network_builder.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

// Max dichromatic clique size through local vertex 0 of net for τ.
size_t DeltaThroughU(const DichromaticNetwork& net, uint32_t tau) {
  MdcSolver solver(net.graph);
  std::vector<uint32_t> best;
  if (!solver.Solve({0}, net.graph.AdjacencyOf(0),
                    static_cast<int32_t>(tau) - 1, static_cast<int32_t>(tau),
                    /*lower_bound=*/0, &best)) {
    return 0;
  }
  return best.size();
}

class Theorem2Sweep : public ::testing::TestWithParam<uint64_t> {};

TEST_P(Theorem2Sweep, MaxOverNetworksEqualsMaxBalancedClique) {
  const SignedGraph graph = RandomSignedGraph(14, 55, 0.45, GetParam());

  for (uint32_t tau : {0u, 1u, 2u}) {
    const size_t expected = BruteForceMaxBalancedClique(graph, tau).size();

    // An arbitrary total ordering (identity) — Theorem 2 holds for any.
    std::vector<uint32_t> rank(graph.NumVertices());
    for (VertexId v = 0; v < graph.NumVertices(); ++v) rank[v] = v;

    DichromaticNetworkBuilder builder(graph);
    size_t best = 0;
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      const DichromaticNetwork net = builder.Build(u, rank.data());
      best = std::max(best, DeltaThroughU(net, tau));
    }
    EXPECT_EQ(best, expected) << "tau=" << tau;
  }
}

// Same sweep under a random ordering: the theorem is ordering-invariant.
TEST_P(Theorem2Sweep, HoldsUnderShuffledOrdering) {
  const SignedGraph graph = RandomSignedGraph(13, 50, 0.5, GetParam() + 777);
  const uint32_t tau = 1;
  const size_t expected = BruteForceMaxBalancedClique(graph, tau).size();

  std::vector<uint32_t> rank(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) rank[v] = v;
  Rng rng(GetParam());
  std::shuffle(rank.begin(), rank.end(), rng);

  DichromaticNetworkBuilder builder(graph);
  size_t best = 0;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    const DichromaticNetwork net = builder.Build(u, rank.data());
    best = std::max(best, DeltaThroughU(net, tau));
  }
  EXPECT_EQ(best, expected);
}

INSTANTIATE_TEST_SUITE_P(Seeds, Theorem2Sweep,
                         ::testing::Range<uint64_t>(1, 11));

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/dichromatic/reductions.h"

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace mbc {
namespace {

// Triangle {0,1,2} plus a pendant 3 attached to 2.
DichromaticGraph TriangleWithTail() {
  DichromaticGraph graph(4);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kLeft);
  graph.SetSide(2, Side::kRight);
  graph.SetSide(3, Side::kRight);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  graph.AddEdge(0, 2);
  graph.AddEdge(2, 3);
  return graph;
}

TEST(KCoreWithinTest, PeelsPendants) {
  const DichromaticGraph graph = TriangleWithTail();
  const Bitset core = KCoreWithin(graph, graph.AllVertices(), 2);
  EXPECT_EQ(core.Count(), 3u);
  EXPECT_TRUE(core.Test(0));
  EXPECT_TRUE(core.Test(1));
  EXPECT_TRUE(core.Test(2));
  EXPECT_FALSE(core.Test(3));
}

TEST(KCoreWithinTest, RespectsCandidateSubset) {
  const DichromaticGraph graph = TriangleWithTail();
  Bitset candidates(4);
  candidates.Set(0);
  candidates.Set(1);  // only the edge (0,1) survives in the induced graph
  const Bitset core = KCoreWithin(graph, candidates, 1);
  EXPECT_EQ(core.Count(), 2u);
  const Bitset empty = KCoreWithin(graph, candidates, 2);
  EXPECT_TRUE(empty.None());
}

TEST(KCoreWithinTest, ZeroKeepsEverything) {
  const DichromaticGraph graph = TriangleWithTail();
  EXPECT_EQ(KCoreWithin(graph, graph.AllVertices(), 0).Count(), 4u);
}

// A (2,2)-biclique-with-sides example for the two-sided core.
TEST(TwoSidedCoreTest, KeepsBalancedCliqueKernel) {
  // L = {0,1}, R = {2,3}; complete; plus a weakly attached L vertex 4.
  DichromaticGraph graph(5);
  for (uint32_t v : {0u, 1u, 4u}) graph.SetSide(v, Side::kLeft);
  for (uint32_t v : {2u, 3u}) graph.SetSide(v, Side::kRight);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) graph.AddEdge(a, b);
  }
  graph.AddEdge(4, 0);  // vertex 4 sees one L vertex, no R vertex

  // (τ_L, τ_R) = (2, 2): an L vertex needs 1 L-neighbor and 2 R-neighbors.
  const Bitset core =
      TwoSidedCoreWithin(graph, graph.AllVertices(), 2, 2);
  EXPECT_EQ(core.Count(), 4u);
  EXPECT_FALSE(core.Test(4));
}

TEST(TwoSidedCoreTest, CascadesAcrossSides) {
  // Path L0 - R1 - L2: (1,1)-core requires every L vertex to have an
  // R-neighbor and vice versa; removing one endpoint cascades.
  DichromaticGraph graph(3);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kRight);
  graph.SetSide(2, Side::kLeft);
  graph.AddEdge(0, 1);
  graph.AddEdge(1, 2);
  // (τ_L, τ_R) = (2, 1): R vertex 1 needs 2 L-neighbors (has 2), L vertices
  // need 1 L-neighbor (τ_L - 1 = 1) and 1 R-neighbor. L vertices have no
  // L-neighbors -> both drop -> vertex 1 drops.
  const Bitset core = TwoSidedCoreWithin(graph, graph.AllVertices(), 2, 1);
  EXPECT_TRUE(core.None());
}

TEST(TwoSidedCoreTest, ZeroThresholdsKeepAll) {
  const DichromaticGraph graph = TriangleWithTail();
  EXPECT_EQ(TwoSidedCoreWithin(graph, graph.AllVertices(), 0, 0).Count(), 4u);
}

TEST(TwoSidedCoreTest, NegativeThresholdsClampToZero) {
  const DichromaticGraph graph = TriangleWithTail();
  EXPECT_EQ(TwoSidedCoreWithin(graph, graph.AllVertices(), -3, -1).Count(),
            4u);
}

// Any clique C with |C ∩ L| >= τL and |C ∩ R| >= τR survives in the
// (τL, τR)-core (the motivation in Section IV-C).
TEST(TwoSidedCoreTest, PreservesQualifyingCliques) {
  // Build L-clique {0,1,2} fully joined to R-clique {3,4}; plus noise.
  DichromaticGraph graph(8);
  for (uint32_t v = 0; v < 3; ++v) graph.SetSide(v, Side::kLeft);
  for (uint32_t v = 3; v < 5; ++v) graph.SetSide(v, Side::kRight);
  for (uint32_t v = 5; v < 8; ++v) graph.SetSide(v, Side::kRight);
  for (uint32_t a = 0; a < 5; ++a) {
    for (uint32_t b = a + 1; b < 5; ++b) graph.AddEdge(a, b);
  }
  graph.AddEdge(5, 0);
  graph.AddEdge(6, 7);
  const Bitset core = TwoSidedCoreWithin(graph, graph.AllVertices(), 3, 2);
  for (uint32_t v = 0; v < 5; ++v) EXPECT_TRUE(core.Test(v)) << v;
  EXPECT_FALSE(core.Test(5));
  EXPECT_FALSE(core.Test(6));
}

TEST(ColoringBoundWithinTest, CliqueNeedsItsSize) {
  DichromaticGraph graph(5);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) graph.AddEdge(a, b);
  }
  EXPECT_EQ(ColoringBoundWithin(graph, graph.AllVertices()), 4u);
  Bitset three(5);
  three.Set(0);
  three.Set(1);
  three.Set(2);
  EXPECT_EQ(ColoringBoundWithin(graph, three), 3u);
}

TEST(ColoringBoundWithinTest, BoundDominatesCliqueSizeRandomized) {
  Rng rng(77);
  for (int trial = 0; trial < 20; ++trial) {
    DichromaticGraph graph(24);
    for (uint32_t a = 0; a < 24; ++a) {
      for (uint32_t b = a + 1; b < 24; ++b) {
        if (rng.NextBernoulli(0.35)) graph.AddEdge(a, b);
      }
    }
    // Find max clique by simple recursion.
    uint32_t best = 0;
    const Bitset all = graph.AllVertices();
    struct Search {
      const DichromaticGraph& g;
      uint32_t* best;
      void Go(Bitset cand, uint32_t size) {
        *best = std::max(*best, size);
        for (size_t v = cand.FindFirst(); v != Bitset::npos;
             v = cand.FindNext(v)) {
          cand.Reset(v);
          Go(g.AdjacencyOf(static_cast<uint32_t>(v)) & cand, size + 1);
        }
      }
    };
    Search search{graph, &best};
    search.Go(all, 0);
    EXPECT_GE(ColoringBoundWithin(graph, all), best);
  }
}

TEST(ColoringBoundWithinTest, EmptyCandidatesGiveZero) {
  DichromaticGraph graph(3);
  EXPECT_EQ(ColoringBoundWithin(graph, Bitset(3)), 0u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/dichromatic/network_builder.h"

#include <algorithm>
#include <map>
#include <vector>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

// Reproduces the paper's Example 1 / Figure 4: the ego-network of v0 (as
// the lowest-ranked vertex) excludes v2 and v8; it has 12 edges among v0's
// neighbors, of which exactly 6 conflicting ones are removed.
TEST(NetworkBuilderTest, PaperFigure4Example) {
  const SignedGraph graph = testing_util::Figure4Graph();
  // Rank v0 lowest; everyone else higher.
  std::vector<uint32_t> rank(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) rank[v] = v;

  DichromaticNetworkBuilder builder(graph);
  const DichromaticNetwork net = builder.Build(0, rank.data());

  // Members: v0 plus its 6 neighbors (v2 and v8 excluded).
  ASSERT_EQ(net.graph.NumVertices(), 7u);
  std::vector<VertexId> members = net.to_original;
  std::sort(members.begin(), members.end());
  EXPECT_EQ(members, (std::vector<VertexId>{0, 1, 3, 4, 5, 6, 7}));

  // Edge-count bookkeeping of Example 1 (u's own edges excluded).
  EXPECT_EQ(net.ego_edges, 12u);
  EXPECT_EQ(net.dichromatic_edges, 6u);

  // Local index lookup.
  std::map<VertexId, uint32_t> local;
  for (uint32_t i = 0; i < net.to_original.size(); ++i) {
    local[net.to_original[i]] = i;
  }

  // Sides: V_L = {v0, v1, v3, v4}, V_R = {v5, v6, v7}.
  EXPECT_TRUE(net.graph.IsLeft(local[0]));
  EXPECT_TRUE(net.graph.IsLeft(local[1]));
  EXPECT_TRUE(net.graph.IsLeft(local[3]));
  EXPECT_TRUE(net.graph.IsLeft(local[4]));
  EXPECT_FALSE(net.graph.IsLeft(local[5]));
  EXPECT_FALSE(net.graph.IsLeft(local[6]));
  EXPECT_FALSE(net.graph.IsLeft(local[7]));

  // The six conflicting edges are gone...
  EXPECT_FALSE(net.graph.HasEdge(local[1], local[4]));
  EXPECT_FALSE(net.graph.HasEdge(local[1], local[5]));
  EXPECT_FALSE(net.graph.HasEdge(local[3], local[5]));
  EXPECT_FALSE(net.graph.HasEdge(local[4], local[5]));
  EXPECT_FALSE(net.graph.HasEdge(local[3], local[7]));
  EXPECT_FALSE(net.graph.HasEdge(local[4], local[7]));
  // ...and the six non-conflicting ones survive.
  EXPECT_TRUE(net.graph.HasEdge(local[1], local[3]));
  EXPECT_TRUE(net.graph.HasEdge(local[3], local[4]));
  EXPECT_TRUE(net.graph.HasEdge(local[6], local[7]));
  EXPECT_TRUE(net.graph.HasEdge(local[5], local[6]));
  EXPECT_TRUE(net.graph.HasEdge(local[1], local[6]));
  EXPECT_TRUE(net.graph.HasEdge(local[4], local[6]));
  // u is adjacent to every member.
  for (uint32_t i = 1; i < net.graph.NumVertices(); ++i) {
    EXPECT_TRUE(net.graph.HasEdge(0, i));
  }
}

TEST(NetworkBuilderTest, RankFilterExcludesLowerRankedNeighbors) {
  const SignedGraph graph = testing_util::Figure2Graph();
  std::vector<uint32_t> rank(graph.NumVertices());
  for (VertexId v = 0; v < graph.NumVertices(); ++v) rank[v] = v;
  DichromaticNetworkBuilder builder(graph);
  // Vertex 4 (v5): neighbors are 2, 3 (positive) and 5, 6, 7 (negative).
  // Only higher-ranked 5, 6, 7 survive the rank filter.
  const DichromaticNetwork net = builder.Build(4, rank.data());
  EXPECT_EQ(net.graph.NumVertices(), 4u);
  EXPECT_EQ(net.graph.LeftMask().Count(), 1u);  // just u
}

TEST(NetworkBuilderTest, NoRankIncludesAllNeighbors) {
  const SignedGraph graph = testing_util::Figure2Graph();
  DichromaticNetworkBuilder builder(graph);
  const DichromaticNetwork net = builder.Build(4);
  EXPECT_EQ(net.graph.NumVertices(), 6u);  // u + 2 positive + 3 negative
  EXPECT_EQ(net.graph.LeftMask().Count(), 3u);
}

TEST(NetworkBuilderTest, AliveFilter) {
  const SignedGraph graph = testing_util::Figure2Graph();
  std::vector<uint8_t> alive(graph.NumVertices(), 1);
  alive[5] = 0;
  alive[6] = 0;
  DichromaticNetworkBuilder builder(graph);
  const DichromaticNetwork net = builder.Build(4, nullptr, alive.data());
  EXPECT_EQ(net.graph.NumVertices(), 4u);  // u, 2, 3, 7
}

TEST(NetworkBuilderTest, ReusableAcrossCalls) {
  const SignedGraph graph = testing_util::Figure4Graph();
  DichromaticNetworkBuilder builder(graph);
  const DichromaticNetwork first = builder.Build(0);
  const DichromaticNetwork second = builder.Build(2);  // degree-1 vertex
  const DichromaticNetwork third = builder.Build(0);
  EXPECT_EQ(first.graph.NumVertices(), third.graph.NumVertices());
  EXPECT_EQ(first.ego_edges, third.ego_edges);
  EXPECT_NE(first.graph.NumVertices(), second.graph.NumVertices());
}

// BuildInto (the clear-and-refill path) must be indistinguishable from a
// fresh Build, including when the reused network shrinks and re-grows —
// stale adjacency rows from a larger previous network must not leak.
TEST(NetworkBuilderTest, BuildIntoMatchesFreshBuild) {
  const SignedGraph graph = testing_util::RandomSignedGraph(50, 350, 0.4, 9);
  DichromaticNetworkBuilder builder(graph);
  DichromaticNetwork reused;
  // Visit every vertex twice in opposite orders so each network is
  // refilled over both larger and smaller predecessors.
  std::vector<VertexId> visits;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) visits.push_back(u);
  for (VertexId u = graph.NumVertices(); u > 0; --u) visits.push_back(u - 1);
  for (VertexId u : visits) {
    const DichromaticNetwork fresh = builder.Build(u);
    builder.BuildInto(u, nullptr, nullptr, &reused);
    ASSERT_EQ(reused.graph.NumVertices(), fresh.graph.NumVertices())
        << "u=" << u;
    ASSERT_EQ(reused.to_original, fresh.to_original) << "u=" << u;
    ASSERT_EQ(reused.ego_edges, fresh.ego_edges) << "u=" << u;
    ASSERT_EQ(reused.dichromatic_edges, fresh.dichromatic_edges) << "u=" << u;
    const uint32_t k = fresh.graph.NumVertices();
    for (uint32_t i = 0; i < k; ++i) {
      ASSERT_EQ(reused.graph.IsLeft(i), fresh.graph.IsLeft(i)) << "u=" << u;
      for (uint32_t j = 0; j < k; ++j) {
        ASSERT_EQ(reused.graph.HasEdge(i, j), fresh.graph.HasEdge(i, j))
            << "u=" << u << " i=" << i << " j=" << j;
      }
    }
  }
}

// Every clique of the dichromatic network that contains u corresponds to a
// balanced clique of the original graph (one direction of Theorem 2).
TEST(NetworkBuilderTest, CliquesAreBalancedInOriginal) {
  const SignedGraph graph = testing_util::RandomSignedGraph(60, 400, 0.4, 21);
  DichromaticNetworkBuilder builder(graph);
  for (VertexId u = 0; u < graph.NumVertices(); u += 7) {
    const DichromaticNetwork net = builder.Build(u);
    const uint32_t k = net.graph.NumVertices();
    // Check all edges of g_u: within-side edges must be positive in G,
    // cross-side edges negative.
    for (uint32_t i = 0; i < k; ++i) {
      for (uint32_t j = i + 1; j < k; ++j) {
        if (!net.graph.HasEdge(i, j)) continue;
        const VertexId a = net.to_original[i];
        const VertexId b = net.to_original[j];
        if (net.graph.IsLeft(i) == net.graph.IsLeft(j)) {
          EXPECT_TRUE(graph.HasPositiveEdge(a, b));
        } else {
          EXPECT_TRUE(graph.HasNegativeEdge(a, b));
        }
      }
    }
  }
}

}  // namespace
}  // namespace mbc

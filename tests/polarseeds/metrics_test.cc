// Copyright 2026 The balanced-clique Authors.
#include "src/polarseeds/metrics.h"

#include <gtest/gtest.h>

#include "src/core/mbc_star.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

PolarizedCommunity AsCommunity(const BalancedClique& clique) {
  return PolarizedCommunity{clique.left, clique.right};
}

TEST(PolarityTest, HandComputedExample) {
  // Balanced (2,2) clique: 2 positive within edges + 4 negative cross.
  // Polarity = (2 + 2*4) / 4 = 2.5.
  const SignedGraph graph = testing_util::FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  PolarizedCommunity community{{0, 1}, {2, 3}};
  EXPECT_DOUBLE_EQ(Polarity(graph, community), 2.5);
}

TEST(PolarityTest, DisagreeingEdgesDoNotCount) {
  // Negative edge inside group1 and positive cross edge contribute nothing.
  const SignedGraph graph = testing_util::FromText("0 1 -1\n0 2 1\n");
  PolarizedCommunity community{{0, 1}, {2}};
  EXPECT_DOUBLE_EQ(Polarity(graph, community), 0.0);
}

TEST(PolarityTest, EmptyCommunityIsZero) {
  EXPECT_DOUBLE_EQ(Polarity(Figure2Graph(), PolarizedCommunity{}), 0.0);
}

TEST(PolarityTest, GrowsWithBalancedCliqueSize) {
  // For a balanced clique of size k, Polarity >= (k-1)/2 and the maximum
  // balanced clique maximizes it among balanced cliques.
  const SignedGraph graph = Figure2Graph();
  BalancedClique small;
  small.left = {0, 1};
  small.right = {2, 3};
  const MbcStarResult best = MaxBalancedCliqueStar(graph, 2);
  EXPECT_GT(Polarity(graph, AsCommunity(best.clique)),
            Polarity(graph, AsCommunity(small)));
}

TEST(SbrTest, PerfectIsolatedSplitIsZero) {
  const SignedGraph graph = testing_util::FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  PolarizedCommunity community{{0, 1}, {2, 3}};
  EXPECT_DOUBLE_EQ(SignedBipartitenessRatio(graph, community), 0.0);
}

TEST(SbrTest, BadEdgesAndBoundaryPenalized) {
  // Positive cross edge (bad) + boundary edge to vertex 3.
  const SignedGraph graph =
      testing_util::FromText("0 1 1\n0 2 1\n2 3 1\n");
  PolarizedCommunity community{{0, 1}, {2}};
  // vol = d(0)+d(1)+d(2) = 2+1+2 = 5; bad = 2*1 (pos cross 0-2) + 1
  // boundary (2-3) = 3.
  EXPECT_DOUBLE_EQ(SignedBipartitenessRatio(graph, community), 3.0 / 5.0);
}

TEST(HamTest, BalancedCliqueScoresOne) {
  // The paper: "the HAM of balanced cliques is always 1".
  const SignedGraph graph = Figure2Graph();
  const MbcStarResult best = MaxBalancedCliqueStar(graph, 2);
  EXPECT_DOUBLE_EQ(
      HarmonicCohesionOpposition(graph, AsCommunity(best.clique)), 1.0);
}

TEST(HamTest, MissingEdgesLowerScore) {
  // group1 pair not connected -> cohesion 1/2.
  const SignedGraph graph = testing_util::FromText(
      "0 1 1\n0 3 -1\n1 3 -1\n2 3 -1\n");
  PolarizedCommunity community{{0, 1, 2}, {3}};
  // cohesion = 1/3 (one positive among three within pairs),
  // opposition = 3/3 = 1. HAM = 2*(1/3)*1 / (4/3) = 0.5.
  EXPECT_DOUBLE_EQ(HarmonicCohesionOpposition(graph, community), 0.5);
}

TEST(HamTest, DegenerateShapesScoreZero) {
  const SignedGraph graph = Figure2Graph();
  EXPECT_DOUBLE_EQ(
      HarmonicCohesionOpposition(graph, PolarizedCommunity{{0}, {}}), 0.0);
  EXPECT_DOUBLE_EQ(
      HarmonicCohesionOpposition(graph, PolarizedCommunity{{0}, {2}}), 0.0);
}

TEST(MetricsTest, RandomBalancedCliquesAlwaysHamOne) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const SignedGraph graph = RandomSignedGraph(50, 300, 0.45, seed);
    const MbcStarResult best = MaxBalancedCliqueStar(graph, 2);
    if (best.clique.empty()) continue;
    EXPECT_DOUBLE_EQ(
        HarmonicCohesionOpposition(graph, AsCommunity(best.clique)), 1.0);
  }
}

}  // namespace
}  // namespace mbc

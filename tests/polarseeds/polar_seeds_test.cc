// Copyright 2026 The balanced-clique Authors.
#include "src/polarseeds/polar_seeds.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

TEST(PickGoodSeedPairsTest, RespectsDefinition) {
  const SignedGraph graph = RandomSignedGraph(500, 3000, 0.4, 7);
  const auto pairs = PickGoodSeedPairs(graph, 20, 2, 99);
  EXPECT_LE(pairs.size(), 20u);
  EXPECT_FALSE(pairs.empty());
  for (const auto& [u, v] : pairs) {
    EXPECT_TRUE(graph.HasNegativeEdge(u, v));
    EXPECT_GT(graph.PositiveDegree(u), 2u);
    EXPECT_GT(graph.PositiveDegree(v), 2u);
  }
}

TEST(PickGoodSeedPairsTest, DeterministicGivenSeed) {
  const SignedGraph graph = RandomSignedGraph(300, 2000, 0.4, 3);
  EXPECT_EQ(PickGoodSeedPairs(graph, 10, 1, 5),
            PickGoodSeedPairs(graph, 10, 1, 5));
}

TEST(PickGoodSeedPairsTest, EmptyWhenNoEligiblePair) {
  // All-positive graph has no negative edges at all.
  const SignedGraph graph = testing_util::FromText("0 1 1\n1 2 1\n");
  EXPECT_TRUE(PickGoodSeedPairs(graph, 10, 0, 1).empty());
}

TEST(PolarSeedsTest, SeparatesTwoPlantedCamps) {
  // Two hostile camps: dense positive inside, negative across.
  CommunityGraphOptions options;
  options.num_vertices = 200;
  options.num_edges = 3000;
  options.num_communities = 2;
  options.intra_community_bias = 0.7;
  options.negative_ratio = 0.3;
  options.powerlaw_alpha = 0.0;
  options.seed = 17;
  const SignedGraph graph = GenerateCommunitySignedGraph(options);

  const auto pairs = PickGoodSeedPairs(graph, 5, 1, 11);
  ASSERT_FALSE(pairs.empty());
  const PolarizedCommunity community =
      PolarSeedsCommunity(graph, pairs[0].first, pairs[0].second);
  ASSERT_FALSE(community.empty());
  EXPECT_FALSE(community.group1.empty());
  EXPECT_FALSE(community.group2.empty());
  // The sweep maximizes Polarity, so it should beat the trivial seed pair.
  PolarizedCommunity trivial{{pairs[0].first}, {pairs[0].second}};
  EXPECT_GE(Polarity(graph, community), Polarity(graph, trivial));
}

TEST(PolarSeedsTest, GroupsAreDisjoint) {
  const SignedGraph graph = RandomSignedGraph(300, 2500, 0.4, 23);
  const auto pairs = PickGoodSeedPairs(graph, 3, 1, 2);
  ASSERT_FALSE(pairs.empty());
  const PolarizedCommunity community =
      PolarSeedsCommunity(graph, pairs[0].first, pairs[0].second);
  std::vector<VertexId> all = community.group1;
  all.insert(all.end(), community.group2.begin(), community.group2.end());
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(PolarSeedsTest, DeterministicOutput) {
  const SignedGraph graph = RandomSignedGraph(250, 2000, 0.35, 29);
  const auto pairs = PickGoodSeedPairs(graph, 1, 1, 4);
  ASSERT_FALSE(pairs.empty());
  const PolarizedCommunity a =
      PolarSeedsCommunity(graph, pairs[0].first, pairs[0].second);
  const PolarizedCommunity b =
      PolarSeedsCommunity(graph, pairs[0].first, pairs[0].second);
  EXPECT_EQ(a.group1, b.group1);
  EXPECT_EQ(a.group2, b.group2);
}

}  // namespace
}  // namespace mbc

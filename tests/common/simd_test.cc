// Copyright 2026 The balanced-clique Authors.
//
// Tests for the runtime-dispatched SIMD kernel layer. Every ISA the host
// supports must be bit-exact against the scalar reference on every word
// count around the vector widths (tail handling is where bugs live), and
// the dispatch controls must fail closed on unsupported names.
#include "src/common/simd.h"

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/aligned.h"
#include "src/common/bitset.h"
#include "src/common/random.h"

namespace mbc {
namespace simd {
namespace {

// Kernel operands use the same 64-byte-aligned storage Bitset does: the
// avx512vpopcnt table issues aligned loads, so feeding it unaligned
// std::vector buffers would be a contract violation, not a kernel bug.
AlignedWordVector RandomWords(size_t n, uint64_t seed) {
  Rng rng(seed);
  AlignedWordVector words(n);
  for (uint64_t& w : words) w = rng.Next();
  return words;
}

class SimdKernelTest : public ::testing::TestWithParam<std::string> {
 protected:
  void TearDown() override { SetActive("auto"); }
};

// Each ISA's six kernels must agree with the scalar kernels on word
// counts spanning sub-lane, exact-lane and lane+tail sizes.
TEST_P(SimdKernelTest, BitExactAgainstScalar) {
  ASSERT_TRUE(SetActive("scalar"));
  const Kernels& scalar = Active();
  ASSERT_TRUE(SetActive(GetParam()));
  const Kernels& tested = Active();

  for (size_t n = 0; n <= 21; ++n) {
    const AlignedWordVector a = RandomWords(n, 1000 + n);
    const AlignedWordVector b = RandomWords(n, 2000 + n);
    const AlignedWordVector c = RandomWords(n, 3000 + n);

    AlignedWordVector dst_scalar(n, 0);
    AlignedWordVector dst_tested(n, 1);
    scalar.assign_and(dst_scalar.data(), a.data(), b.data(), n);
    tested.assign_and(dst_tested.data(), a.data(), b.data(), n);
    EXPECT_EQ(dst_scalar, dst_tested) << "assign_and, n=" << n;

    std::fill(dst_tested.begin(), dst_tested.end(), 1);
    const uint64_t fused_count =
        tested.assign_and_count(dst_tested.data(), a.data(), b.data(), n);
    EXPECT_EQ(dst_scalar, dst_tested) << "assign_and_count dst, n=" << n;
    EXPECT_EQ(fused_count, scalar.count(dst_scalar.data(), n))
        << "assign_and_count count, n=" << n;

    EXPECT_EQ(tested.count(a.data(), n), scalar.count(a.data(), n))
        << "count, n=" << n;
    EXPECT_EQ(tested.count_and(a.data(), b.data(), n),
              scalar.count_and(a.data(), b.data(), n))
        << "count_and, n=" << n;
    EXPECT_EQ(tested.count_and_and(a.data(), b.data(), c.data(), n),
              scalar.count_and_and(a.data(), b.data(), c.data(), n))
        << "count_and_and, n=" << n;

    AlignedWordVector an_scalar = a;
    AlignedWordVector an_tested = a;
    scalar.and_not(an_scalar.data(), b.data(), n);
    tested.and_not(an_tested.data(), b.data(), n);
    EXPECT_EQ(an_scalar, an_tested) << "and_not, n=" << n;
  }
}

// Bitset's inline fast path and the dispatched slow path must agree: the
// same logical operation on 2-word and 20-word sets with the same bit
// pattern prefix returns consistent counts under every ISA.
TEST_P(SimdKernelTest, BitsetOperationsConsistentAcrossSizes) {
  ASSERT_TRUE(SetActive(GetParam()));
  for (const size_t bits : {64u, 128u, 192u, 512u, 1000u}) {
    Rng rng(bits);
    Bitset a(bits);
    Bitset b(bits);
    size_t expected_and = 0;
    for (size_t i = 0; i < bits; ++i) {
      const bool in_a = rng.NextBernoulli(0.5);
      const bool in_b = rng.NextBernoulli(0.5);
      if (in_a) a.Set(i);
      if (in_b) b.Set(i);
      expected_and += in_a && in_b;
    }
    EXPECT_EQ(a.CountAnd(b), expected_and) << bits;
    Bitset dst;
    EXPECT_EQ(dst.AssignAndCount(a, b), expected_and) << bits;
    EXPECT_EQ(dst.Count(), expected_and) << bits;
    EXPECT_EQ(a.CountAndAnd(b, b), expected_and) << bits;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, SimdKernelTest, ::testing::ValuesIn(SupportedIsas()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// The avx512vpopcnt kernels' aligned-load contract rests on this: every
// AlignedWordVector allocation (and therefore every Bitset word array)
// starts on a 64-byte boundary, across the growth sizes the arena sees.
TEST(SimdDispatchTest, WordStorageIs64ByteAligned) {
  for (const size_t n : {1u, 2u, 7u, 8u, 9u, 16u, 21u, 64u, 1000u}) {
    AlignedWordVector words(n, 0);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(words.data()) % 64, 0u) << n;
  }
}

TEST(SimdDispatchTest, ScalarAlwaysSupported) {
  EXPECT_TRUE(Supported("scalar"));
  const std::vector<std::string> isas = SupportedIsas();
  ASSERT_FALSE(isas.empty());
  EXPECT_EQ(isas.front(), "scalar");
}

TEST(SimdDispatchTest, SetActiveRejectsUnknownAndKeepsCurrent) {
  ASSERT_TRUE(SetActive("scalar"));
  EXPECT_FALSE(SetActive("sse9000"));
  EXPECT_STREQ(ActiveName(), "scalar");
  EXPECT_FALSE(SetActive(""));
  EXPECT_STREQ(ActiveName(), "scalar");
  SetActive("auto");
}

TEST(SimdDispatchTest, SetActiveRoundTripsEverySupportedIsa) {
  for (const std::string& isa : SupportedIsas()) {
    ASSERT_TRUE(SetActive(isa)) << isa;
    EXPECT_EQ(std::string(ActiveName()), isa);
  }
  ASSERT_TRUE(SetActive("auto"));
}

}  // namespace
}  // namespace simd
}  // namespace mbc

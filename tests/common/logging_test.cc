// Copyright 2026 The balanced-clique Authors.
#include "src/common/logging.h"

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(LoggingTest, LevelRoundTrips) {
  const LogLevel original = GetLogLevel();
  SetLogLevel(LogLevel::kError);
  EXPECT_EQ(GetLogLevel(), LogLevel::kError);
  SetLogLevel(original);
}

TEST(LoggingTest, PassingChecksDoNotAbort) {
  MBC_CHECK(true) << "never shown";
  MBC_CHECK_EQ(1, 1);
  MBC_CHECK_NE(1, 2);
  MBC_CHECK_LT(1, 2);
  MBC_CHECK_LE(2, 2);
  MBC_CHECK_GT(3, 2);
  MBC_CHECK_GE(3, 3);
  MBC_DCHECK(true);
  SUCCEED();
}

TEST(LoggingDeathTest, FailedCheckAborts) {
  EXPECT_DEATH({ MBC_CHECK(false) << "boom"; }, "Check failed");
}

TEST(LoggingDeathTest, FailedCheckOpShowsValues) {
  const int a = 3;
  const int b = 4;
  EXPECT_DEATH({ MBC_CHECK_EQ(a, b); }, "3 vs 4");
}

TEST(LoggingDeathTest, FatalLogAborts) {
  EXPECT_DEATH({ MBC_LOG(Fatal) << "fatal path"; }, "fatal path");
}

}  // namespace
}  // namespace mbc

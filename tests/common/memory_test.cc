// Copyright 2026 The balanced-clique Authors.
#include "src/common/memory.h"

#include <vector>

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(MemoryTest, RssReadersReturnPlausibleValues) {
  const uint64_t peak = PeakRssBytes();
  const uint64_t current = CurrentRssBytes();
  // On Linux both are populated; peak >= current (modulo sampling races).
  EXPECT_GT(peak, 0u);
  EXPECT_GT(current, 0u);
  EXPECT_GE(peak + (1 << 20), current);
}

TEST(MemoryTest, PeakRssGrowsWithAllocation) {
  const uint64_t before = PeakRssBytes();
  // Touch 64 MiB so the pages are actually resident.
  std::vector<char> block(64 << 20, 1);
  const uint64_t after = PeakRssBytes();
  EXPECT_GE(after, before + (32 << 20));
  EXPECT_NE(block[12345], 0);
}

TEST(MemoryTrackerTest, TracksCurrentAndPeak) {
  MemoryTracker tracker;
  tracker.Add(100);
  tracker.Add(50);
  EXPECT_EQ(tracker.current_bytes(), 150u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.Sub(120);
  EXPECT_EQ(tracker.current_bytes(), 30u);
  EXPECT_EQ(tracker.peak_bytes(), 150u);
  tracker.ResetPeak();
  EXPECT_EQ(tracker.peak_bytes(), 30u);
  tracker.Add(10);
  EXPECT_EQ(tracker.peak_bytes(), 40u);
}

TEST(MemoryTrackerTest, GlobalSingletonIsStable) {
  MemoryTracker& a = MemoryTracker::Global();
  MemoryTracker& b = MemoryTracker::Global();
  EXPECT_EQ(&a, &b);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/common/status.h"

#include <string>

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status status = Status::InvalidArgument("tau must be non-negative");
  EXPECT_FALSE(status.ok());
  EXPECT_TRUE(status.IsInvalidArgument());
  EXPECT_EQ(status.message(), "tau must be non-negative");
  EXPECT_EQ(status.ToString(), "Invalid argument: tau must be non-negative");
}

TEST(StatusTest, AllConstructorsSetCodes) {
  EXPECT_TRUE(Status::IOError("x").IsIOError());
  EXPECT_TRUE(Status::NotFound("x").IsNotFound());
  EXPECT_TRUE(Status::Corruption("x").IsCorruption());
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_TRUE(Status::Cancelled("x").IsCancelled());
  EXPECT_TRUE(Status::ResourceExhausted("x").IsResourceExhausted());
  EXPECT_TRUE(Status::DeadlineExceeded("x").IsDeadlineExceeded());
}

TEST(StatusTest, GovernorCodesRenderDistinctly) {
  const Status cancelled = Status::Cancelled("user hit Ctrl-C");
  EXPECT_FALSE(cancelled.ok());
  EXPECT_EQ(cancelled.code(), StatusCode::kCancelled);
  EXPECT_EQ(cancelled.ToString(), "Cancelled: user hit Ctrl-C");

  const Status exhausted = Status::ResourceExhausted("deadline exceeded");
  EXPECT_FALSE(exhausted.ok());
  EXPECT_EQ(exhausted.code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(exhausted.ToString(), "Resource exhausted: deadline exceeded");

  // The two governor codes are distinct from each other and from the
  // pre-existing ones (a cancelled run is not a corrupt or failed one).
  EXPECT_FALSE(cancelled.IsResourceExhausted());
  EXPECT_FALSE(exhausted.IsCancelled());
  EXPECT_FALSE(cancelled.IsIOError());
  EXPECT_FALSE(exhausted.IsCorruption());

  // deadline_exceeded is its own code: "you waited too long" must not be
  // confused with "the service is out of capacity" (only the latter is
  // retryable as-is).
  const Status late = Status::DeadlineExceeded("deadline exceeded");
  EXPECT_EQ(late.code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(late.ToString(), "Deadline exceeded: deadline exceeded");
  EXPECT_FALSE(late.IsResourceExhausted());
  EXPECT_FALSE(late.IsCancelled());
  EXPECT_FALSE(exhausted.IsDeadlineExceeded());
}

TEST(StatusTest, CopyableAndCheap) {
  Status a = Status::IOError("disk");
  Status b = a;
  EXPECT_TRUE(b.IsIOError());
  EXPECT_EQ(b.message(), "disk");
}

TEST(ResultTest, HoldsValue) {
  Result<int> result(41);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 41);
  EXPECT_TRUE(result.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> result(Status::NotFound("gone"));
  EXPECT_FALSE(result.ok());
  EXPECT_TRUE(result.status().IsNotFound());
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> result(std::string("payload"));
  std::string value = std::move(result).value();
  EXPECT_EQ(value, "payload");
}

namespace helpers {

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status Doubled(int x, int* out) {
  MBC_ASSIGN_OR_RETURN(const int value, ParsePositive(x));
  *out = 2 * value;
  return Status::OK();
}

}  // namespace helpers

TEST(ResultTest, AssignOrReturnMacroPropagates) {
  int out = 0;
  EXPECT_TRUE(helpers::Doubled(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status failed = helpers::Doubled(-1, &out);
  EXPECT_TRUE(failed.IsInvalidArgument());
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  auto run = [](bool fail) -> Status {
    MBC_RETURN_NOT_OK(fail ? Status::IOError("boom") : Status::OK());
    return Status::OK();
  };
  EXPECT_TRUE(run(false).ok());
  EXPECT_TRUE(run(true).IsIOError());
}

}  // namespace
}  // namespace mbc

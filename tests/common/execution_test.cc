// Copyright 2026 The balanced-clique Authors.
//
// Unit tests for the execution governor: deadline semantics, sticky
// first-reason-wins interrupts, checkpoint amortization, deterministic
// fault injection, and the ExecutionScope legacy-option bridge.
#include "src/common/execution.h"

#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/memory.h"

namespace mbc {
namespace {

TEST(DeadlineTest, DefaultIsInfinite) {
  Deadline deadline;
  EXPECT_TRUE(deadline.IsInfinite());
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 1e18);
}

TEST(DeadlineTest, ZeroBudgetIsAlreadyExpired) {
  EXPECT_TRUE(Deadline::After(0.0).Expired());
  EXPECT_TRUE(Deadline::After(-1.0).Expired());
}

TEST(DeadlineTest, HugeBudgetSaturatesToInfinite) {
  EXPECT_TRUE(Deadline::After(1e300).IsInfinite());
}

TEST(DeadlineTest, FutureDeadlineNotExpired) {
  const Deadline deadline = Deadline::After(3600.0);
  EXPECT_FALSE(deadline.Expired());
  EXPECT_GT(deadline.RemainingSeconds(), 3500.0);
  EXPECT_LT(deadline.RemainingSeconds(), 3601.0);
}

TEST(ExecutionContextTest, FreshContextIsNotInterrupted) {
  ExecutionContext exec;
  EXPECT_FALSE(exec.Interrupted());
  EXPECT_EQ(exec.reason(), InterruptReason::kNone);
  EXPECT_TRUE(exec.status().ok());
  EXPECT_FALSE(exec.Probe());
}

TEST(ExecutionContextTest, ExpiredDeadlineInterruptsAtSetTime) {
  // The zero-budget guarantee: no checkpoint needs to run for the
  // interrupt to be recorded.
  ExecutionContext exec(Deadline::After(0.0));
  EXPECT_TRUE(exec.Interrupted());
  EXPECT_EQ(exec.reason(), InterruptReason::kDeadline);
  EXPECT_TRUE(exec.status().IsDeadlineExceeded());
}

TEST(ExecutionContextTest, CancellationWinsAndIsSticky) {
  ExecutionContext exec;
  exec.RequestCancel();
  EXPECT_TRUE(exec.Probe());
  EXPECT_EQ(exec.reason(), InterruptReason::kCancelled);
  // A later deadline expiry must not overwrite the first reason.
  exec.set_deadline(Deadline::After(0.0));
  EXPECT_TRUE(exec.Probe());
  EXPECT_EQ(exec.reason(), InterruptReason::kCancelled);
  EXPECT_TRUE(exec.status().IsCancelled());
}

TEST(ExecutionContextTest, CheckpointProbesOnFirstCallThenAmortizes) {
  ExecutionContext exec;
  // First call probes (and finds nothing); the next stride-1 calls are
  // cheap ticks even after cancellation is requested mid-stride...
  EXPECT_FALSE(exec.Checkpoint());
  exec.RequestCancel();
  // ...except Checkpoint short-circuits on an already-recorded interrupt,
  // which has not happened yet. The cancellation is observed at the next
  // full probe, at most kCheckpointStride calls later.
  uint64_t calls = 1;
  while (!exec.Checkpoint()) {
    ++calls;
    ASSERT_LE(calls, ExecutionContext::kCheckpointStride + 1);
  }
  EXPECT_EQ(exec.reason(), InterruptReason::kCancelled);
  // Once interrupted, every subsequent checkpoint returns true.
  EXPECT_TRUE(exec.Checkpoint());
}

TEST(ExecutionContextTest, MemoryBudgetTripsOnTrackerGrowth) {
  MemoryTracker tracker;
  tracker.Add(2 * 1024 * 1024);
  ExecutionContext exec;
  exec.set_memory_budget(
      MemoryBudget(1024 * 1024, &tracker, /*include_rss=*/false));
  EXPECT_TRUE(exec.Probe());
  EXPECT_EQ(exec.reason(), InterruptReason::kMemoryBudget);
  tracker.Sub(2 * 1024 * 1024);
}

TEST(ExecutionContextTest, FaultInjectionIsDeterministicPerSeed) {
  auto probes_until_trip = [](uint64_t seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(0.05, seed);
    int probes = 0;
    while (!exec.Probe()) {
      ++probes;
      if (probes > 10000) break;
    }
    EXPECT_EQ(exec.reason(), InterruptReason::kInjectedFault);
    return probes;
  };
  const int first = probes_until_trip(42);
  EXPECT_EQ(first, probes_until_trip(42));
  // Certainty-probability faults trip on the very first probe.
  ExecutionContext always;
  always.ArmFaultInjection(1.0, 7);
  EXPECT_TRUE(always.Probe());
  EXPECT_EQ(always.reason(), InterruptReason::kInjectedFault);
}

TEST(ExecutionContextTest, DisarmedFaultInjectionNeverTrips) {
  ExecutionContext exec;
  exec.ArmFaultInjection(1.0, 1);
  exec.DisarmFaultInjection();
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(exec.Probe());
}

TEST(ExecutionContextTest, CrossThreadCancelIsObserved) {
  ExecutionContext exec;
  std::thread canceller([&exec] { exec.RequestCancel(); });
  canceller.join();
  EXPECT_TRUE(exec.Probe());
  EXPECT_EQ(exec.reason(), InterruptReason::kCancelled);
}

TEST(ExecutionContextTest, ConcurrentProbesRecordExactlyOneReason) {
  ExecutionContext exec;
  exec.RequestCancel();
  std::vector<std::thread> threads;
  threads.reserve(8);
  for (int t = 0; t < 8; ++t) {
    threads.emplace_back([&exec] {
      for (int i = 0; i < 1000; ++i) EXPECT_TRUE(exec.Checkpoint());
    });
  }
  for (std::thread& t : threads) t.join();
  EXPECT_EQ(exec.reason(), InterruptReason::kCancelled);
}

TEST(ExecutionScopeTest, PrefersSharedContext) {
  ExecutionContext shared;
  shared.RequestCancel();
  ExecutionScope scope(&shared, /*time_limit_seconds=*/1e6);
  EXPECT_EQ(scope.get(), &shared);
  EXPECT_TRUE(scope->Probe());
  EXPECT_EQ(scope->reason(), InterruptReason::kCancelled);
}

TEST(ExecutionScopeTest, BuildsLocalDeadlineFromLegacyOption) {
  ExecutionScope zero(nullptr, 0.0);
  EXPECT_TRUE(zero->Interrupted());
  EXPECT_EQ(zero->reason(), InterruptReason::kDeadline);

  ExecutionScope unlimited(nullptr, std::nullopt);
  EXPECT_FALSE(unlimited->Probe());
  EXPECT_TRUE(unlimited->deadline().IsInfinite());
}

TEST(InterruptReasonTest, NamesAndStatusMapping) {
  EXPECT_STREQ(InterruptReasonName(InterruptReason::kNone), "none");
  EXPECT_STREQ(InterruptReasonName(InterruptReason::kDeadline), "deadline");
  EXPECT_STREQ(InterruptReasonName(InterruptReason::kCancelled), "cancelled");
  EXPECT_STREQ(InterruptReasonName(InterruptReason::kMemoryBudget),
               "memory-budget");
  EXPECT_STREQ(InterruptReasonName(InterruptReason::kInjectedFault),
               "injected-fault");
  EXPECT_TRUE(InterruptStatus(InterruptReason::kNone).ok());
  EXPECT_TRUE(InterruptStatus(InterruptReason::kCancelled).IsCancelled());
  EXPECT_TRUE(
      InterruptStatus(InterruptReason::kInjectedFault).IsCancelled());
  EXPECT_TRUE(
      InterruptStatus(InterruptReason::kDeadline).IsDeadlineExceeded());
  EXPECT_FALSE(
      InterruptStatus(InterruptReason::kDeadline).IsResourceExhausted());
  EXPECT_TRUE(
      InterruptStatus(InterruptReason::kMemoryBudget).IsResourceExhausted());
}

}  // namespace
}  // namespace mbc

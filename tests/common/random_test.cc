// Copyright 2026 The balanced-clique Authors.
#include "src/common/random.h"

#include <cmath>
#include <vector>

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(RngTest, DeterministicForSameSeed) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.Next() == b.Next());
  EXPECT_LT(same, 2);
}

TEST(RngTest, ReseedRestartsStream) {
  Rng rng(7);
  const uint64_t first = rng.Next();
  rng.Next();
  rng.Reseed(7);
  EXPECT_EQ(rng.Next(), first);
}

TEST(RngTest, NextBoundedStaysInRange) {
  Rng rng(99);
  for (uint64_t bound : {1ull, 2ull, 3ull, 17ull, 1000ull, 1ull << 40}) {
    for (int i = 0; i < 200; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RngTest, NextBoundedCoversRange) {
  Rng rng(5);
  std::vector<int> seen(10, 0);
  for (int i = 0; i < 5000; ++i) ++seen[rng.NextBounded(10)];
  for (int bucket : seen) EXPECT_GT(bucket, 300);  // ~500 each
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double x = rng.NextDouble();
    ASSERT_GE(x, 0.0);
    ASSERT_LT(x, 1.0);
    sum += x;
  }
  EXPECT_NEAR(sum / 10000.0, 0.5, 0.02);
}

TEST(RngTest, BernoulliMatchesProbability) {
  Rng rng(13);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.NextBernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(SplitMix64Test, KnownSequenceIsStable) {
  uint64_t state = 0;
  const uint64_t a = SplitMix64(state);
  const uint64_t b = SplitMix64(state);
  EXPECT_NE(a, b);
  uint64_t state2 = 0;
  EXPECT_EQ(SplitMix64(state2), a);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/common/env.h"

#include <cstdlib>

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(EnvTest, FallbackWhenUnset) {
  unsetenv("MBC_TEST_UNSET");
  EXPECT_DOUBLE_EQ(GetEnvDouble("MBC_TEST_UNSET", 2.5), 2.5);
  EXPECT_EQ(GetEnvInt("MBC_TEST_UNSET", -7), -7);
  EXPECT_EQ(GetEnvString("MBC_TEST_UNSET", "dflt"), "dflt");
}

TEST(EnvTest, ParsesValues) {
  setenv("MBC_TEST_VAL", "0.125", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MBC_TEST_VAL", 1.0), 0.125);
  setenv("MBC_TEST_VAL", "42", 1);
  EXPECT_EQ(GetEnvInt("MBC_TEST_VAL", 0), 42);
  setenv("MBC_TEST_VAL", "hello", 1);
  EXPECT_EQ(GetEnvString("MBC_TEST_VAL", ""), "hello");
  unsetenv("MBC_TEST_VAL");
}

TEST(EnvTest, FallbackOnGarbage) {
  setenv("MBC_TEST_BAD", "not-a-number", 1);
  EXPECT_DOUBLE_EQ(GetEnvDouble("MBC_TEST_BAD", 3.0), 3.0);
  EXPECT_EQ(GetEnvInt("MBC_TEST_BAD", 9), 9);
  unsetenv("MBC_TEST_BAD");
}

TEST(EnvTest, EmptyStringTreatedAsUnset) {
  setenv("MBC_TEST_EMPTY", "", 1);
  EXPECT_EQ(GetEnvInt("MBC_TEST_EMPTY", 5), 5);
  unsetenv("MBC_TEST_EMPTY");
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/common/timer.h"

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(TimerTest, ElapsedIsNonNegativeAndMonotone) {
  Timer timer;
  const double first = timer.ElapsedSeconds();
  EXPECT_GE(first, 0.0);
  double previous = first;
  for (int i = 0; i < 100; ++i) {
    const double now = timer.ElapsedSeconds();
    EXPECT_GE(now, previous);
    previous = now;
  }
}

namespace {
// Busy-wait until the timer passes `seconds`.
void SpinUntil(const Timer& timer, double seconds) {
  while (timer.ElapsedSeconds() < seconds) {
  }
}
}  // namespace

TEST(TimerTest, MeasuresRealDelay) {
  Timer timer;
  SpinUntil(timer, 0.002);
  EXPECT_GE(timer.ElapsedMicros(), 2000);
}

TEST(TimerTest, RestartResets) {
  Timer timer;
  SpinUntil(timer, 0.002);
  timer.Restart();
  EXPECT_LT(timer.ElapsedSeconds(), 0.002);
}

TEST(TimerTest, MicrosAndSecondsAgree) {
  Timer timer;
  SpinUntil(timer, 0.001);
  const double seconds = timer.ElapsedSeconds();
  const int64_t micros = timer.ElapsedMicros();
  EXPECT_NEAR(static_cast<double>(micros) / 1e6, seconds, 0.01);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/common/arena.h"

#include <gtest/gtest.h>

#include "src/common/memory.h"

namespace mbc {
namespace {

TEST(SearchArenaTest, BindSizesDegreesAndTracksBounds) {
  SearchArena arena;
  EXPECT_EQ(arena.bound_bits(), 0u);
  EXPECT_EQ(arena.depth_capacity(), 0u);

  arena.BindNetwork(100);
  EXPECT_EQ(arena.bound_bits(), 100u);
  SearchArena::Frame& frame = arena.FrameAt(0);
  EXPECT_EQ(frame.degrees.size(), 100u);
  EXPECT_GE(arena.depth_capacity(), 1u);
}

TEST(SearchArenaTest, FrameReferencesSurviveDeeperGrowth) {
  SearchArena arena;
  arena.BindNetwork(64);
  SearchArena::Frame& root = arena.FrameAt(0);
  root.cand.Reshape(64);
  root.cand.Set(7);
  // Materialize many deeper frames; the deque must not move frame 0.
  for (size_t depth = 1; depth < 40; ++depth) {
    arena.FrameAt(depth).cand.Reshape(64);
  }
  EXPECT_TRUE(root.cand.Test(7));
  EXPECT_EQ(&root, &arena.FrameAt(0));
  EXPECT_EQ(arena.depth_capacity(), 40u);
}

TEST(SearchArenaTest, RebindShrinksLogicalSizeKeepsCapacity) {
  SearchArena arena;
  arena.BindNetwork(256);
  arena.FrameAt(0).cand.Reshape(256);
  const size_t big = arena.MemoryBytes();

  // Binding a smaller network must not release storage (monotone
  // high-water growth is what makes steady state allocation-free).
  arena.BindNetwork(16);
  EXPECT_EQ(arena.FrameAt(0).degrees.size(), 16u);
  EXPECT_GE(arena.MemoryBytes(), big);
}

TEST(SearchArenaTest, MemoryTrackerAccountSettlesAndReleases) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const uint64_t before = tracker.current_bytes();
  {
    SearchArena arena;
    arena.BindNetwork(128);
    arena.FrameAt(0).cand.Reshape(128);
    arena.FrameAt(1).cand.Reshape(128);
    // The account is settled at bind time; a fresh bind books the growth
    // from the frames materialized above.
    arena.BindNetwork(128);
    EXPECT_EQ(tracker.current_bytes(), before + arena.MemoryBytes());
  }
  // Destruction returns every accounted byte.
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(SearchArenaTest, FlatScratchIsReusable) {
  SearchArena arena;
  arena.BindNetwork(32);
  arena.pending().push_back(3);
  arena.pairs().emplace_back(1, 2);
  arena.color_rows().emplace_back(32);
  EXPECT_EQ(arena.pending().size(), 1u);
  EXPECT_EQ(arena.pairs().size(), 1u);
  EXPECT_EQ(arena.color_rows().size(), 1u);
  // Rebinding does not clear flat scratch (callers own the protocol), but
  // the arena keeps accounting for it.
  arena.BindNetwork(32);
  EXPECT_GT(arena.MemoryBytes(), 0u);
}

}  // namespace
}  // namespace mbc

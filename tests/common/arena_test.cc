// Copyright 2026 The balanced-clique Authors.
#include "src/common/arena.h"

#include <gtest/gtest.h>

#include "src/common/memory.h"

namespace mbc {
namespace {

TEST(SearchArenaTest, BindSizesDegreesAndTracksBounds) {
  SearchArena arena;
  EXPECT_EQ(arena.bound_bits(), 0u);
  EXPECT_EQ(arena.depth_capacity(), 0u);

  arena.BindNetwork(100);
  EXPECT_EQ(arena.bound_bits(), 100u);
  SearchArena::Frame& frame = arena.FrameAt(0);
  EXPECT_EQ(frame.degrees.size(), 100u);
  EXPECT_GE(arena.depth_capacity(), 1u);
}

TEST(SearchArenaTest, FrameReferencesSurviveDeeperGrowth) {
  SearchArena arena;
  arena.BindNetwork(64);
  SearchArena::Frame& root = arena.FrameAt(0);
  root.cand.Reshape(64);
  root.cand.Set(7);
  // Materialize many deeper frames; the deque must not move frame 0.
  for (size_t depth = 1; depth < 40; ++depth) {
    arena.FrameAt(depth).cand.Reshape(64);
  }
  EXPECT_TRUE(root.cand.Test(7));
  EXPECT_EQ(&root, &arena.FrameAt(0));
  EXPECT_EQ(arena.depth_capacity(), 40u);
}

TEST(SearchArenaTest, RebindShrinksLogicalSizeKeepsCapacity) {
  SearchArena arena;
  arena.BindNetwork(256);
  arena.FrameAt(0).cand.Reshape(256);
  const size_t big = arena.MemoryBytes();

  // Binding a smaller network must not release storage (monotone
  // high-water growth is what makes steady state allocation-free).
  arena.BindNetwork(16);
  EXPECT_EQ(arena.FrameAt(0).degrees.size(), 16u);
  EXPECT_GE(arena.MemoryBytes(), big);
}

TEST(SearchArenaTest, MemoryTrackerAccountSettlesAndReleases) {
  MemoryTracker& tracker = MemoryTracker::Global();
  const uint64_t before = tracker.current_bytes();
  {
    SearchArena arena;
    arena.BindNetwork(128);
    arena.FrameAt(0).cand.Reshape(128);
    arena.FrameAt(1).cand.Reshape(128);
    // The account is settled at bind time; a fresh bind books the growth
    // from the frames materialized above.
    arena.BindNetwork(128);
    EXPECT_EQ(tracker.current_bytes(), before + arena.MemoryBytes());
  }
  // Destruction returns every accounted byte.
  EXPECT_EQ(tracker.current_bytes(), before);
}

TEST(SearchArenaTest, FlatScratchIsReusable) {
  SearchArena arena;
  arena.BindNetwork(32);
  arena.pending().push_back(3);
  arena.pairs().emplace_back(1, 2);
  arena.color_rows().emplace_back(32);
  EXPECT_EQ(arena.pending().size(), 1u);
  EXPECT_EQ(arena.pairs().size(), 1u);
  EXPECT_EQ(arena.color_rows().size(), 1u);
  // Rebinding does not clear flat scratch (callers own the protocol), but
  // the arena keeps accounting for it.
  arena.BindNetwork(32);
  EXPECT_GT(arena.MemoryBytes(), 0u);
}


TEST(SearchArenaTest, SnapshotFrameClonesAndRestores) {
  SearchArena arena;
  arena.BindNetwork(70);  // > one word, so multi-word copies are exercised
  SearchArena::Frame& frame = arena.FrameAt(2);
  frame.cand.Reshape(70);
  frame.pool.Reshape(70);
  frame.remaining.Reshape(70);
  frame.cand.Set(3);
  frame.cand.Set(69);
  frame.pool.Set(7);
  frame.remaining.Set(68);

  SearchArena::FrameSnapshot snapshot;
  arena.SnapshotFrame(2, &snapshot);
  EXPECT_TRUE(snapshot.cand.Test(3));
  EXPECT_TRUE(snapshot.cand.Test(69));
  EXPECT_TRUE(snapshot.pool.Test(7));
  EXPECT_TRUE(snapshot.remaining.Test(68));

  // The snapshot is detached: scribbling over the frame does not touch it,
  // and RestoreFrame brings the original rows back.
  frame.cand.ClearAll();
  frame.pool.SetAll();
  frame.remaining.ClearAll();
  EXPECT_TRUE(snapshot.cand.Test(3));
  arena.RestoreFrame(2, snapshot);
  SearchArena::Frame& restored = arena.FrameAt(2);
  EXPECT_TRUE(restored.cand.Test(3));
  EXPECT_TRUE(restored.cand.Test(69));
  EXPECT_EQ(restored.cand.Count(), 2u);
  EXPECT_EQ(restored.pool.Count(), 1u);
  EXPECT_TRUE(restored.remaining.Test(68));
}

TEST(SearchArenaTest, SnapshotStorageIsReusedAcrossCaptures) {
  SearchArena arena;
  arena.BindNetwork(64);
  SearchArena::Frame& frame = arena.FrameAt(0);
  frame.cand.Reshape(64);
  frame.pool.Reshape(64);
  frame.remaining.Reshape(64);
  frame.cand.Set(1);

  SearchArena::FrameSnapshot snapshot;
  arena.SnapshotFrame(0, &snapshot);
  frame.cand.Set(2);
  arena.SnapshotFrame(0, &snapshot);  // second capture overwrites
  EXPECT_TRUE(snapshot.cand.Test(1));
  EXPECT_TRUE(snapshot.cand.Test(2));
  EXPECT_EQ(snapshot.cand.Count(), 2u);
}

}  // namespace
}  // namespace mbc

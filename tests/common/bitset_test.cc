// Copyright 2026 The balanced-clique Authors.
#include "src/common/bitset.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace mbc {
namespace {

TEST(BitsetTest, StartsEmpty) {
  Bitset bits(130);
  EXPECT_EQ(bits.capacity(), 130u);
  EXPECT_EQ(bits.Count(), 0u);
  EXPECT_TRUE(bits.None());
  EXPECT_FALSE(bits.Any());
  for (size_t i = 0; i < 130; ++i) EXPECT_FALSE(bits.Test(i));
}

TEST(BitsetTest, SetResetTest) {
  Bitset bits(100);
  bits.Set(0);
  bits.Set(63);
  bits.Set(64);
  bits.Set(99);
  EXPECT_TRUE(bits.Test(0));
  EXPECT_TRUE(bits.Test(63));
  EXPECT_TRUE(bits.Test(64));
  EXPECT_TRUE(bits.Test(99));
  EXPECT_FALSE(bits.Test(1));
  EXPECT_EQ(bits.Count(), 4u);
  bits.Reset(63);
  EXPECT_FALSE(bits.Test(63));
  EXPECT_EQ(bits.Count(), 3u);
}

TEST(BitsetTest, SetFirstN) {
  Bitset bits(130);
  bits.SetFirstN(65);
  EXPECT_EQ(bits.Count(), 65u);
  EXPECT_TRUE(bits.Test(64));
  EXPECT_FALSE(bits.Test(65));
  bits.SetFirstN(3);
  EXPECT_EQ(bits.Count(), 3u);
  EXPECT_FALSE(bits.Test(64));
}

TEST(BitsetTest, SetAllAndClearAll) {
  Bitset bits(70);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 70u);
  bits.ClearAll();
  EXPECT_TRUE(bits.None());
}

TEST(BitsetTest, BinaryOps) {
  Bitset a(200);
  Bitset b(200);
  a.Set(3);
  a.Set(100);
  a.Set(150);
  b.Set(100);
  b.Set(199);

  Bitset and_result = a & b;
  EXPECT_EQ(and_result.Count(), 1u);
  EXPECT_TRUE(and_result.Test(100));

  Bitset or_result = a | b;
  EXPECT_EQ(or_result.Count(), 4u);

  Bitset diff = a;
  diff.AndNot(b);
  EXPECT_EQ(diff.Count(), 2u);
  EXPECT_FALSE(diff.Test(100));
  EXPECT_TRUE(diff.Test(3));

  Bitset xor_result = a;
  xor_result ^= b;
  EXPECT_EQ(xor_result.Count(), 3u);
  EXPECT_FALSE(xor_result.Test(100));
}

TEST(BitsetTest, CountAndIntersects) {
  Bitset a(128);
  Bitset b(128);
  EXPECT_FALSE(a.Intersects(b));
  a.Set(5);
  a.Set(127);
  b.Set(127);
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_EQ(a.CountAnd(b), 1u);
}

TEST(BitsetTest, IsSubsetOf) {
  Bitset a(64);
  Bitset b(64);
  EXPECT_TRUE(a.IsSubsetOf(b));
  a.Set(10);
  EXPECT_FALSE(a.IsSubsetOf(b));
  b.Set(10);
  b.Set(20);
  EXPECT_TRUE(a.IsSubsetOf(b));
  EXPECT_FALSE(b.IsSubsetOf(a));
}

TEST(BitsetTest, FindFirstAndNext) {
  Bitset bits(200);
  EXPECT_EQ(bits.FindFirst(), Bitset::npos);
  bits.Set(65);
  bits.Set(66);
  bits.Set(199);
  EXPECT_EQ(bits.FindFirst(), 65u);
  EXPECT_EQ(bits.FindNext(65), 66u);
  EXPECT_EQ(bits.FindNext(66), 199u);
  EXPECT_EQ(bits.FindNext(199), Bitset::npos);
}

TEST(BitsetTest, ForEachVisitsAscending) {
  Bitset bits(300);
  const std::vector<size_t> expected = {0, 1, 63, 64, 128, 255, 299};
  for (size_t i : expected) bits.Set(i);
  std::vector<size_t> visited;
  bits.ForEach([&visited](size_t i) { visited.push_back(i); });
  EXPECT_EQ(visited, expected);
}

TEST(BitsetTest, ToVector) {
  Bitset bits(80);
  bits.Set(2);
  bits.Set(79);
  EXPECT_EQ(bits.ToVector(), (std::vector<uint32_t>{2, 79}));
}

TEST(BitsetTest, EqualityRespectsContentAndCapacity) {
  Bitset a(64);
  Bitset b(64);
  EXPECT_EQ(a, b);
  a.Set(1);
  EXPECT_FALSE(a == b);
  b.Set(1);
  EXPECT_EQ(a, b);
  EXPECT_FALSE(a == Bitset(65));
}

// Randomized differential test against std::set.
TEST(BitsetTest, RandomizedAgainstReferenceSet) {
  Rng rng(42);
  constexpr size_t kBits = 257;
  Bitset bits(kBits);
  std::set<size_t> reference;
  for (int step = 0; step < 4000; ++step) {
    const size_t i = rng.NextBounded(kBits);
    if (rng.NextBernoulli(0.5)) {
      bits.Set(i);
      reference.insert(i);
    } else {
      bits.Reset(i);
      reference.erase(i);
    }
  }
  EXPECT_EQ(bits.Count(), reference.size());
  std::vector<uint32_t> from_bits = bits.ToVector();
  std::vector<uint32_t> from_set(reference.begin(), reference.end());
  EXPECT_EQ(from_bits, from_set);
}

// ReshapeUninit followed by a full overwrite must be indistinguishable
// from Reshape followed by the same overwrite (the only legal usage).
TEST(BitsetTest, ReshapeUninitThenFullOverwrite) {
  Bitset bits(130);
  bits.Set(0);
  bits.Set(129);
  bits.ReshapeUninit(130);
  bits.SetAll();
  EXPECT_EQ(bits.Count(), 130u);
  bits.ReshapeUninit(70);
  bits.SetFirstN(70);
  EXPECT_EQ(bits.Count(), 70u);
  bits.ReshapeUninit(70);
  bits.SetFirstN(3);
  EXPECT_EQ(bits.ToVector(), (std::vector<uint32_t>{0, 1, 2}));

  Bitset source(200);
  source.Set(5);
  source.Set(199);
  bits.ReshapeUninit(64);
  bits.CopyFrom(source);
  EXPECT_EQ(bits.capacity(), 200u);
  EXPECT_EQ(bits.ToVector(), (std::vector<uint32_t>{5, 199}));
}

TEST(BitsetTest, AssignAndCountMatchesAssignAndPlusCount) {
  Rng rng(7);
  for (const size_t bits : {5u, 64u, 128u, 200u, 513u}) {
    Bitset a(bits);
    Bitset b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextBernoulli(0.4)) a.Set(i);
      if (rng.NextBernoulli(0.4)) b.Set(i);
    }
    Bitset via_assign;
    via_assign.AssignAnd(a, b);
    Bitset via_fused;
    const size_t fused = via_fused.AssignAndCount(a, b);
    EXPECT_EQ(via_fused, via_assign) << bits;
    EXPECT_EQ(fused, via_assign.Count()) << bits;
    EXPECT_EQ(fused, a.CountAnd(b)) << bits;
  }
}

TEST(BitsetTest, ForEachAndVisitsExactlyTheIntersection) {
  Rng rng(11);
  for (const size_t bits : {1u, 64u, 129u, 400u}) {
    Bitset a(bits);
    Bitset b(bits);
    for (size_t i = 0; i < bits; ++i) {
      if (rng.NextBernoulli(0.5)) a.Set(i);
      if (rng.NextBernoulli(0.5)) b.Set(i);
    }
    std::vector<uint32_t> visited;
    a.ForEachAnd(b, [&visited](size_t i) {
      visited.push_back(static_cast<uint32_t>(i));
    });
    EXPECT_EQ(visited, (a & b).ToVector()) << bits;
  }
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/service/result_cache.h"

#include <gtest/gtest.h>

#include <string>

#include "src/common/memory.h"

namespace mbc {
namespace {

CacheKey KeyFor(uint64_t fingerprint, uint32_t tau = 1,
                const std::string& algo = "star") {
  CacheKey key;
  key.graph_fingerprint = fingerprint;
  key.kind = QueryKind::kMbc;
  key.tau = tau;
  key.algo = algo;
  return key;
}

QueryResult ResultOfSize(size_t vertices) {
  QueryResult result;
  for (size_t i = 0; i < vertices; ++i) {
    result.clique.left.push_back(static_cast<VertexId>(2 * i));
    result.clique.right.push_back(static_cast<VertexId>(2 * i + 1));
  }
  return result;
}

TEST(ResultCacheTest, MissThenHit) {
  ResultCache cache(1 << 20);
  const CacheKey key = KeyFor(42);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  cache.Insert(key, ResultOfSize(3));
  const std::optional<QueryResult> hit = cache.Lookup(key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->clique.size(), 6u);

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_DOUBLE_EQ(stats.HitRate(), 0.5);
}

TEST(ResultCacheTest, KeyDistinguishesEveryField) {
  ResultCache cache(1 << 20);
  cache.Insert(KeyFor(1, 2, "star"), ResultOfSize(1));
  EXPECT_TRUE(cache.Lookup(KeyFor(1, 2, "star")).has_value());
  EXPECT_FALSE(cache.Lookup(KeyFor(2, 2, "star")).has_value());  // fingerprint
  EXPECT_FALSE(cache.Lookup(KeyFor(1, 3, "star")).has_value());  // tau
  EXPECT_FALSE(cache.Lookup(KeyFor(1, 2, "adv")).has_value());   // algo
  CacheKey pf = KeyFor(1, 2, "star");
  pf.kind = QueryKind::kPf;
  EXPECT_FALSE(cache.Lookup(pf).has_value());  // kind
}

TEST(ResultCacheTest, ZeroCapacityDisablesCaching) {
  ResultCache cache(0);
  const CacheKey key = KeyFor(7);
  cache.Insert(key, ResultOfSize(2));
  EXPECT_FALSE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.Stats().insertions, 0u);
  EXPECT_EQ(cache.Stats().entries, 0u);
}

TEST(ResultCacheTest, EvictsLeastRecentlyUsedUnderPressure) {
  // Tiny budget: each entry is ~a few hundred bytes, so a flood of inserts
  // must evict, and the cache may never exceed its configured capacity.
  ResultCache cache(8 << 10);
  for (uint64_t i = 0; i < 512; ++i) {
    cache.Insert(KeyFor(i), ResultOfSize(8));
    EXPECT_LE(cache.Stats().memory_bytes, cache.capacity_bytes());
  }
  const CacheStats stats = cache.Stats();
  EXPECT_GT(stats.evictions, 0u);
  EXPECT_GT(stats.entries, 0u);
  EXPECT_LT(stats.entries, 512u);
}

TEST(ResultCacheTest, LookupRefreshesRecency) {
  // With one shard's worth of keys that all collide into the same shard we
  // can't easily force exact LRU order across shards, but repeated
  // lookups of one key must keep it resident through a flood of inserts
  // that evicts most others.
  ResultCache cache(16 << 10);
  const CacheKey hot = KeyFor(99999);
  cache.Insert(hot, ResultOfSize(4));
  for (uint64_t i = 0; i < 2000; ++i) {
    cache.Insert(KeyFor(i), ResultOfSize(4));
    ASSERT_TRUE(cache.Lookup(hot).has_value()) << "evicted after " << i;
  }
}

TEST(ResultCacheTest, OversizedEntryIsDropped) {
  ResultCache cache(1 << 10);  // shard budget = 128 bytes
  cache.Insert(KeyFor(5), ResultOfSize(1000));
  EXPECT_FALSE(cache.Lookup(KeyFor(5)).has_value());
  EXPECT_EQ(cache.Stats().insertions, 0u);
}

TEST(ResultCacheTest, MemoryTrackerSettlesOnClearAndDestruction) {
  const size_t baseline = MemoryTracker::Global().current_bytes();
  {
    ResultCache cache(1 << 20);
    for (uint64_t i = 0; i < 64; ++i) {
      cache.Insert(KeyFor(i), ResultOfSize(16));
    }
    EXPECT_GT(MemoryTracker::Global().current_bytes(), baseline);
    cache.Clear();
    EXPECT_EQ(MemoryTracker::Global().current_bytes(), baseline);
    EXPECT_EQ(cache.Stats().entries, 0u);
    cache.Insert(KeyFor(1), ResultOfSize(16));
  }
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), baseline);
}

TEST(ResultCacheTest, ReinsertSameKeyKeepsOneEntry) {
  ResultCache cache(1 << 20);
  cache.Insert(KeyFor(3), ResultOfSize(2));
  cache.Insert(KeyFor(3), ResultOfSize(2));
  EXPECT_EQ(cache.Stats().entries, 1u);
  EXPECT_EQ(cache.Stats().insertions, 1u);
}

TEST(ResultCacheTest, AdmissionCapRefusesOversizedWitnessPayloads) {
  // Large budget, small per-entry cap: a modest result is admitted, a
  // witness-heavy one is served-but-not-cached and counted as an
  // admission skip (not an insertion, not an eviction).
  ResultCache cache(1 << 20, /*max_entry_bytes=*/512);
  cache.Insert(KeyFor(1), ResultOfSize(4));
  EXPECT_TRUE(cache.Lookup(KeyFor(1)).has_value());

  QueryResult big = ResultOfSize(4);
  for (uint64_t i = 0; i < 200; ++i) {
    big.gmbc_cliques.push_back(big.clique);
  }
  cache.Insert(KeyFor(2), big);
  EXPECT_FALSE(cache.Lookup(KeyFor(2)).has_value());

  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.insertions, 1u);
  EXPECT_EQ(stats.admission_skipped, 1u);
  EXPECT_EQ(stats.evictions, 0u);
  EXPECT_EQ(cache.max_entry_bytes(), 512u);
}

TEST(ResultCacheTest, DoorkeeperDefersFirstLargeInsert) {
  // Large entries (here: anything over ~0 bytes of payload threshold)
  // must knock twice; the first attempt only registers the key.
  ResultCache cache(1 << 20, /*max_entry_bytes=*/0,
                    /*doorkeeper_bytes=*/256);
  const CacheKey key = KeyFor(1);
  const QueryResult large = ResultOfSize(200);  // well over 256 bytes
  cache.Insert(key, large);
  EXPECT_FALSE(cache.Lookup(key).has_value());
  CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.admission_rejected_by_policy, 1u);
  EXPECT_EQ(stats.insertions, 0u);

  // The repeat attempt is evidence of reuse: admitted.
  cache.Insert(key, large);
  EXPECT_TRUE(cache.Lookup(key).has_value());
  stats = cache.Stats();
  EXPECT_EQ(stats.admission_rejected_by_policy, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ResultCacheTest, DoorkeeperIgnoresSmallEntries) {
  ResultCache cache(1 << 20, 0, /*doorkeeper_bytes=*/1 << 16);
  const CacheKey key = KeyFor(2);
  cache.Insert(key, ResultOfSize(4));  // far below the threshold
  EXPECT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.Stats().admission_rejected_by_policy, 0u);
}

TEST(ResultCacheTest, DoorkeeperDisabledByDefault) {
  ResultCache cache(1 << 20);
  EXPECT_EQ(cache.doorkeeper_bytes(), 0u);
  const CacheKey key = KeyFor(3);
  cache.Insert(key, ResultOfSize(500));
  EXPECT_TRUE(cache.Lookup(key).has_value());
  EXPECT_EQ(cache.Stats().admission_rejected_by_policy, 0u);
}

TEST(ResultCacheTest, DoorkeeperProtectsHotEntriesFromOneShotScan) {
  // A scan of distinct one-shot large payloads must not evict the hot
  // small entries: every scan key is stopped at the door.
  ResultCache cache(1 << 16, 0, /*doorkeeper_bytes=*/512);
  const CacheKey hot = KeyFor(100);
  cache.Insert(hot, ResultOfSize(2));
  for (uint64_t i = 0; i < 64; ++i) {
    cache.Insert(KeyFor(1000 + i, /*tau=*/3), ResultOfSize(300));
  }
  EXPECT_TRUE(cache.Lookup(hot).has_value());
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.admission_rejected_by_policy, 64u);
  EXPECT_EQ(stats.evictions, 0u);
}

TEST(ResultCacheTest, ZeroCapMeansNoPerEntryLimit) {
  ResultCache cache(1 << 20);  // default max_entry_bytes = 0
  QueryResult big = ResultOfSize(4);
  for (uint64_t i = 0; i < 200; ++i) {
    big.gmbc_cliques.push_back(big.clique);
  }
  cache.Insert(KeyFor(7), big);
  EXPECT_TRUE(cache.Lookup(KeyFor(7)).has_value());
  EXPECT_EQ(cache.Stats().admission_skipped, 0u);
}

TEST(ResultCacheTest, ShardBudgetSkipsAlsoCountAsAdmissionSkips) {
  ResultCache cache(1 << 10);  // shard budget = 128 bytes
  cache.Insert(KeyFor(5), ResultOfSize(1000));
  EXPECT_EQ(cache.Stats().admission_skipped, 1u);
}

}  // namespace
}  // namespace mbc

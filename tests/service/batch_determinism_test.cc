// Copyright 2026 The balanced-clique Authors.
//
// The service-layer acceptance bar: a 1000-query JSONL batch with a
// repeat-heavy mix must produce byte-identical output whether it runs on
// one worker or a pool, and the repeats must actually hit the cache.
#include <gtest/gtest.h>

#include <cstdint>
#include <sstream>
#include <string>

#include "src/service/jsonl.h"
#include "src/service/query_service.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

constexpr uint32_t kNumGraphs = 3;
constexpr uint32_t kNumQueries = 1000;

SignedGraph MakeGraph(uint32_t g) {
  return RandomSignedGraph(30 + 5 * g, 180 + 40 * g, 0.45, 500 + g);
}

/// Builds the batch: a bounded pool of distinct (graph, kind, tau, algo)
/// shapes, cycled deterministically so well over half the lines repeat an
/// earlier shape.
std::string BuildBatch() {
  std::ostringstream batch;
  uint64_t state = 12345;
  for (uint32_t i = 0; i < kNumQueries; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    // ~48 distinct shapes over 1000 queries => ~95% repeats.
    const uint32_t g = static_cast<uint32_t>((state >> 33) % kNumGraphs);
    const uint32_t pick = static_cast<uint32_t>((state >> 17) % 8);
    batch << "{\"id\":\"q" << i << "\",\"graph\":\"g" << g << "\"";
    if (pick < 5) {
      batch << ",\"kind\":\"mbc\",\"tau\":"
            << 1 + static_cast<uint32_t>((state >> 7) % 4);
      if (pick == 4) batch << ",\"algo\":\"adv\"";
    } else if (pick < 7) {
      batch << ",\"kind\":\"pf\"";
      if (pick == 6) batch << ",\"algo\":\"bs\"";
    } else {
      batch << ",\"kind\":\"gmbc\"";
    }
    batch << "}\n";
  }
  return batch.str();
}

std::string RunBatch(const std::string& batch, size_t workers,
                     double* hit_rate) {
  ServiceOptions options;
  options.num_workers = workers;
  options.max_queue = 128;
  QueryService service(options);
  for (uint32_t g = 0; g < kNumGraphs; ++g) {
    std::string name = "g";
    name += std::to_string(g);
    EXPECT_TRUE(service.store().Load(name, MakeGraph(g)).ok());
  }
  std::istringstream in(batch);
  std::ostringstream out;
  JsonlOptions jsonl;
  jsonl.deterministic = true;
  EXPECT_TRUE(RunJsonlStream(service, in, out, jsonl).ok());
  if (hit_rate != nullptr) *hit_rate = service.Stats().cache.HitRate();
  return out.str();
}

TEST(BatchDeterminismTest, ThousandQueryBatchIsByteIdenticalAcrossPools) {
  const std::string batch = BuildBatch();

  double sequential_hit_rate = 0.0;
  const std::string sequential = RunBatch(batch, 1, &sequential_hit_rate);
  // Sanity on shape: one response line per request, all ok.
  size_t lines = 0;
  for (const char c : sequential) lines += c == '\n';
  ASSERT_EQ(lines, kNumQueries);
  EXPECT_EQ(sequential.find("\"ok\":false"), std::string::npos);

  double pooled_hit_rate = 0.0;
  const std::string pooled = RunBatch(batch, 4, &pooled_hit_rate);
  EXPECT_EQ(sequential, pooled);

  // The repeat-heavy mix must be served mostly from cache. Concurrent
  // identical queries can race past each other's insert, so the pooled
  // rate may dip slightly below the sequential one — both must clear the
  // acceptance bar.
  EXPECT_GE(sequential_hit_rate, 0.45) << "sequential";
  EXPECT_GE(pooled_hit_rate, 0.45) << "pooled";
}

TEST(BatchDeterminismTest, RerunningTheSameServiceIsAllHits) {
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("g0", MakeGraph(0)).ok());
  std::ostringstream batch;
  for (uint32_t tau = 1; tau <= 4; ++tau) {
    batch << "{\"graph\":\"g0\",\"kind\":\"mbc\",\"tau\":" << tau << "}\n";
  }
  JsonlOptions jsonl;
  jsonl.deterministic = true;
  std::istringstream first(batch.str());
  std::ostringstream out1;
  ASSERT_TRUE(RunJsonlStream(service, first, out1, jsonl).ok());
  const CacheStats after_first = service.Stats().cache;
  std::istringstream second(batch.str());
  std::ostringstream out2;
  ASSERT_TRUE(RunJsonlStream(service, second, out2, jsonl).ok());
  EXPECT_EQ(out1.str(), out2.str());
  // The second pass added no insertions and only hits.
  const CacheStats after_second = service.Stats().cache;
  EXPECT_EQ(after_second.insertions, after_first.insertions);
  EXPECT_EQ(after_second.hits, after_first.hits + 4);
}

}  // namespace
}  // namespace mbc

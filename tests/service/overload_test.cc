// Copyright 2026 The balanced-clique Authors.
//
// Overload resilience: token buckets, the overload state machine,
// deadline propagation and queue shedding, brownout degradation with
// cache-tier separation, session quotas, and the JSONL error-code /
// stats surface of all of the above.
#include <gtest/gtest.h>

#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <utility>
#include <vector>

#include "src/common/histogram.h"
#include "src/core/verify.h"
#include "src/service/degraded.h"
#include "src/service/jsonl.h"
#include "src/service/overload.h"
#include "src/service/query_service.h"
#include "src/service/session.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

QueryRequest MbcRequest(const std::string& graph, uint32_t tau,
                        const std::string& id = "q") {
  QueryRequest request;
  request.id = id;
  request.graph = graph;
  request.kind = QueryKind::kMbc;
  request.tau = tau;
  return request;
}

// ---------------------------------------------------------------------------
// TokenBucket

TEST(TokenBucketTest, StartsFullAndRefillsAtRate) {
  TokenBucket bucket(2.0, 3.0);
  const auto t0 = TokenBucket::Clock::now();
  EXPECT_TRUE(bucket.TryAcquireAt(t0));
  EXPECT_TRUE(bucket.TryAcquireAt(t0));
  EXPECT_TRUE(bucket.TryAcquireAt(t0));
  EXPECT_FALSE(bucket.TryAcquireAt(t0));
  // 2 tokens/s: after 500ms exactly one token has accrued.
  const auto t1 = t0 + std::chrono::milliseconds(500);
  EXPECT_TRUE(bucket.TryAcquireAt(t1));
  EXPECT_FALSE(bucket.TryAcquireAt(t1));
}

TEST(TokenBucketTest, BurstCapsAccrual) {
  TokenBucket bucket(1000.0, 2.0);
  const auto t0 = TokenBucket::Clock::now();
  // An hour of idle accrual still holds only `burst` tokens.
  const auto t1 = t0 + std::chrono::hours(1);
  EXPECT_TRUE(bucket.TryAcquireAt(t1));
  EXPECT_TRUE(bucket.TryAcquireAt(t1));
  EXPECT_FALSE(bucket.TryAcquireAt(t1));
}

TEST(TokenBucketTest, BurstBelowOneStillAdmitsOneQuery) {
  TokenBucket bucket(0.001, 0.0);  // burst clamps to 1.0
  EXPECT_GE(bucket.burst(), 1.0);
  EXPECT_TRUE(bucket.TryAcquire());
  EXPECT_FALSE(bucket.TryAcquire());
}

// ---------------------------------------------------------------------------
// OverloadMonitor

OverloadPolicy TestPolicy() {
  OverloadPolicy policy;
  policy.enabled = true;
  policy.shed_queue_fraction = 0.5;
  policy.brownout_queue_fraction = 0.85;
  policy.recover_queue_fraction = 0.25;
  return policy;
}

TEST(OverloadMonitorTest, EscalatesAndRecoversWithHysteresis) {
  OverloadMonitor monitor(TestPolicy(), nullptr);
  EXPECT_EQ(monitor.Update(0, 100), OverloadState::kNormal);
  EXPECT_EQ(monitor.Update(49, 100), OverloadState::kNormal);
  EXPECT_EQ(monitor.Update(50, 100), OverloadState::kShedding);
  // Between recover (25) and shed (50): sticky, no recovery yet.
  EXPECT_EQ(monitor.Update(40, 100), OverloadState::kShedding);
  EXPECT_EQ(monitor.Update(26, 100), OverloadState::kShedding);
  EXPECT_EQ(monitor.Update(25, 100), OverloadState::kNormal);
  EXPECT_EQ(monitor.shedding_entered(), 1u);

  EXPECT_EQ(monitor.Update(85, 100), OverloadState::kBrownout);
  // Brownout does not demote to shedding at mid fill; only a drain to the
  // recover fraction restores normal.
  EXPECT_EQ(monitor.Update(60, 100), OverloadState::kBrownout);
  EXPECT_EQ(monitor.Update(10, 100), OverloadState::kNormal);
  EXPECT_EQ(monitor.brownout_entered(), 1u);
}

TEST(OverloadMonitorTest, LatencyTripNeedsSamples) {
  OverloadPolicy policy = TestPolicy();
  policy.brownout_p95_seconds = 0.5;
  LatencyHistogram latency;
  OverloadMonitor monitor(policy, &latency);
  // 31 slow samples: below the cold-histogram floor, no trip.
  for (int i = 0; i < 31; ++i) latency.Record(2.0);
  EXPECT_EQ(monitor.Update(0, 100), OverloadState::kNormal);
  latency.Record(2.0);
  EXPECT_EQ(monitor.Update(0, 100), OverloadState::kBrownout);
}

TEST(OverloadMonitorTest, DisabledPolicyNeverLeavesNormal) {
  OverloadPolicy policy;  // enabled = false
  OverloadMonitor monitor(policy, nullptr);
  EXPECT_EQ(monitor.Update(100, 100), OverloadState::kNormal);
  EXPECT_EQ(monitor.shedding_entered(), 0u);
}

// ---------------------------------------------------------------------------
// Deadline propagation

TEST(DeadlineShedTest, ExpiredWhileQueuedIsShedNotRun) {
  ServiceOptions options;
  options.num_workers = 1;
  options.start_workers = false;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  QueryRequest request = MbcRequest("fig2", 2, "late");
  request.deadline_ms = 1e-6;  // expired long before a worker exists
  Result<std::future<QueryResponse>> submitted =
      service.Submit(std::move(request));
  ASSERT_TRUE(submitted.ok());
  service.StartWorkers();

  QueryResponse response = submitted.value().get();
  EXPECT_TRUE(response.status.IsDeadlineExceeded())
      << response.status.ToString();
  EXPECT_EQ(response.id, "late");

  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_shed_deadline, 1u);
  EXPECT_EQ(stats.queries_served, 0u);
  // A shed query must never populate the cache.
  EXPECT_EQ(stats.cache.insertions, 0u);
}

TEST(DeadlineShedTest, GenerousDeadlineStillRuns) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  QueryRequest request = MbcRequest("fig2", 2);
  request.deadline_ms = 60000.0;
  QueryResponse response = service.Query(std::move(request));
  ASSERT_TRUE(response.status.ok()) << response.status.ToString();
  EXPECT_EQ(response.result.clique.size(), 6u);
  EXPECT_EQ(service.Stats().queries_shed_deadline, 0u);
}

// ---------------------------------------------------------------------------
// Overload shedding and brownout at admission

TEST(OverloadShedTest, SheddingRefusesImmediatelyWithoutQueueing) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 4;
  options.start_workers = false;
  options.overload = TestPolicy();
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  // Two queued queries push fill to 2/4 = shed threshold.
  Result<std::future<QueryResponse>> first =
      service.Submit(MbcRequest("fig2", 2, "a"));
  Result<std::future<QueryResponse>> second =
      service.Submit(MbcRequest("fig2", 1, "b"));
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(service.overload_state(), OverloadState::kShedding);

  Result<std::future<QueryResponse>> third =
      service.Submit(MbcRequest("fig2", 3, "c"));
  ASSERT_TRUE(third.ok());  // admission "succeeds": the answer is the shed
  std::future<QueryResponse> shed = std::move(third.value());
  ASSERT_EQ(shed.wait_for(std::chrono::seconds(0)),
            std::future_status::ready);
  QueryResponse response = shed.get();
  EXPECT_TRUE(response.status.IsResourceExhausted())
      << response.status.ToString();
  EXPECT_EQ(response.id, "c");
  EXPECT_EQ(service.Stats().queries_shed_overload, 1u);

  service.StartWorkers();
  EXPECT_TRUE(first.value().get().status.ok());
  EXPECT_TRUE(second.value().get().status.ok());
}

TEST(BrownoutTest, DegradedAnswersAreTaggedCachedSeparatelyAndNeverExact) {
  // Brownout fires below the shed fraction: the monitor checks the
  // brownout threshold first, so this policy browns out at fill 0.5
  // without ever passing through the (unreachable) shedding band.
  ServiceOptions brownout_options;
  brownout_options.num_workers = 1;
  brownout_options.max_queue = 4;
  brownout_options.start_workers = false;
  brownout_options.overload.enabled = true;
  brownout_options.overload.shed_queue_fraction = 0.75;
  brownout_options.overload.brownout_queue_fraction = 0.5;
  brownout_options.overload.recover_queue_fraction = 0.1;
  QueryService browned(brownout_options);
  ASSERT_TRUE(browned.store().Load("fig2", Figure2Graph()).ok());

  Result<std::future<QueryResponse>> a =
      browned.Submit(MbcRequest("fig2", 1, "a"));
  Result<std::future<QueryResponse>> b =
      browned.Submit(MbcRequest("fig2", 3, "b"));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(browned.overload_state(), OverloadState::kBrownout);

  // No cache entry exists yet, so brownout admission downgrades the query
  // to the greedy tier; it runs when the workers start.
  Result<std::future<QueryResponse>> degraded_future =
      browned.Submit(MbcRequest("fig2", 2, "deg"));
  ASSERT_TRUE(degraded_future.ok());
  browned.StartWorkers();

  QueryResponse degraded = degraded_future.value().get();
  ASSERT_TRUE(degraded.status.ok()) << degraded.status.ToString();
  EXPECT_TRUE(degraded.degraded);
  // The greedy answer is a valid balanced clique and a lower bound on the
  // exact |C*| = 6.
  if (degraded.result.clique.size() > 0) {
    EXPECT_TRUE(IsBalancedClique(Figure2Graph(), degraded.result.clique));
    EXPECT_GE(degraded.result.clique.left.size(), 2u);
    EXPECT_GE(degraded.result.clique.right.size(), 2u);
  }
  EXPECT_LE(degraded.result.clique.size(), 6u);

  ASSERT_TRUE(a.value().get().status.ok());
  ASSERT_TRUE(b.value().get().status.ok());

  ServiceStats stats = browned.Stats();
  EXPECT_EQ(stats.queries_degraded, 1u);
  EXPECT_EQ(stats.cache.degraded_insertions, 1u);

  // Back under the recover fraction: the same query now runs exact, and
  // the degraded cache entry must NOT satisfy it.
  QueryResponse exact = browned.Query(MbcRequest("fig2", 2, "exact"));
  ASSERT_TRUE(exact.status.ok()) << exact.status.ToString();
  EXPECT_FALSE(exact.degraded);
  EXPECT_FALSE(exact.cached);
  EXPECT_EQ(exact.result.clique.size(), 6u);
}

TEST(BrownoutTest, BrownoutPrefersExactCacheHit) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 8;
  options.overload.enabled = true;
  options.overload.shed_queue_fraction = 0.9;
  options.overload.brownout_queue_fraction = 0.25;  // 2 of 8 queued
  options.overload.recover_queue_fraction = 0.1;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  ASSERT_TRUE(
      service.store().Load("big", RandomSignedGraph(48, 500, 0.45, 7)).ok());

  // Warm the exact cache in the normal state.
  QueryResponse warm = service.Query(MbcRequest("fig2", 2, "warm"));
  ASSERT_TRUE(warm.status.ok());
  ASSERT_FALSE(warm.degraded);

  // Park the single worker behind real solves until admission observes
  // brownout. Back-to-back submissions outrun one worker's drain with
  // near-certainty; if the machine somehow drains faster, skip rather
  // than flake.
  std::vector<std::future<QueryResponse>> parked;
  bool saw_brownout = false;
  for (int i = 0; i < 6 && !saw_brownout; ++i) {
    QueryRequest park = MbcRequest("big", 1, "park" + std::to_string(i));
    park.no_cache = true;
    Result<std::future<QueryResponse>> f = service.Submit(std::move(park));
    if (f.ok()) parked.push_back(std::move(f.value()));
    saw_brownout = service.overload_state() == OverloadState::kBrownout;
  }
  if (!saw_brownout) {
    for (std::future<QueryResponse>& f : parked) f.get();
    GTEST_SKIP() << "worker drained faster than admission; cannot observe "
                    "brownout deterministically here";
  }

  // A brownout query with an exact cache entry gets that exact answer,
  // immediately and not marked degraded.
  Result<std::future<QueryResponse>> hit =
      service.Submit(MbcRequest("fig2", 2, "hit"));
  ASSERT_TRUE(hit.ok());
  QueryResponse response = hit.value().get();
  ASSERT_TRUE(response.status.ok());
  EXPECT_FALSE(response.degraded);
  EXPECT_TRUE(response.cached);
  EXPECT_EQ(response.result.clique.size(), 6u);
  for (std::future<QueryResponse>& f : parked) f.get();
}

// ---------------------------------------------------------------------------
// Degraded tier correctness

TEST(DegradedResultTest, GreedyAnswersAreFeasibleLowerBounds) {
  const SignedGraph fig2 = Figure2Graph();
  const QueryResult mbc = ComputeDegradedResult(fig2, QueryKind::kMbc, 2);
  if (mbc.clique.size() > 0) {
    EXPECT_TRUE(IsBalancedClique(fig2, mbc.clique));
    EXPECT_GE(mbc.clique.left.size(), 2u);
    EXPECT_GE(mbc.clique.right.size(), 2u);
    EXPECT_LE(mbc.clique.size(), 6u);
  }

  const QueryResult pf = ComputeDegradedResult(fig2, QueryKind::kPf, 0);
  EXPECT_LE(pf.beta, 3u);  // beta(fig2) = 3; greedy lower-bounds it

  const QueryResult gmbc = ComputeDegradedResult(fig2, QueryKind::kGmbc, 0);
  EXPECT_EQ(gmbc.gmbc_sizes.size(), static_cast<size_t>(gmbc.beta) + 1);
  for (size_t tau = 1; tau < gmbc.gmbc_sizes.size(); ++tau) {
    EXPECT_LE(gmbc.gmbc_sizes[tau], gmbc.gmbc_sizes[tau - 1])
        << "greedy gMBC sizes must be monotone non-increasing";
  }
}

TEST(DegradedResultTest, DeterministicAcrossCalls) {
  const SignedGraph graph = RandomSignedGraph(40, 300, 0.5, 3);
  const QueryResult first = ComputeDegradedResult(graph, QueryKind::kMbc, 1);
  const QueryResult second = ComputeDegradedResult(graph, QueryKind::kMbc, 1);
  EXPECT_EQ(first.clique.left, second.clique.left);
  EXPECT_EQ(first.clique.right, second.clique.right);
  if (first.clique.size() > 0) {
    EXPECT_TRUE(IsBalancedClique(graph, first.clique));
  }
}

// ---------------------------------------------------------------------------
// Session quotas (max-in-flight, rate limit, global bucket)

std::vector<std::string> RunSession(QueryService& service,
                                    const JsonlOptions& options,
                                    const std::vector<std::string>& lines,
                                    bool start_workers_after = false) {
  JsonlSession session(service, options, /*blocking_submit=*/false);
  for (const std::string& line : lines) session.HandleLine(line);
  if (start_workers_after) service.StartWorkers();
  std::vector<std::string> out;
  session.DrainBlocking(&out);
  return out;
}

TEST(SessionQuotaTest, MaxInflightShedsOverQuotaQueryInOrder) {
  ServiceOptions service_options;
  service_options.num_workers = 1;
  service_options.start_workers = false;
  QueryService service(service_options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  JsonlOptions options;
  options.deterministic = true;
  options.max_inflight = 2;
  const std::vector<std::string> out = RunSession(
      service, options,
      {R"({"id":"a","graph":"fig2","tau":2})",
       R"({"id":"b","graph":"fig2","tau":1})",
       R"({"id":"c","graph":"fig2","tau":3})"},
      /*start_workers_after=*/true);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NE(out[0].find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(out[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(out[1].find("\"id\":\"b\""), std::string::npos);
  // The third query exceeded the in-flight quota while a and b were still
  // queued: one resource_exhausted frame, in order.
  EXPECT_NE(out[2].find("\"id\":\"c\""), std::string::npos);
  EXPECT_NE(out[2].find("\"error\":\"resource_exhausted\""),
            std::string::npos);
  EXPECT_NE(out[2].find("max-in-flight"), std::string::npos);
  EXPECT_EQ(service.Stats().transport.queries_shed_quota, 1u);
}

TEST(SessionQuotaTest, RateLimitShedsBeyondBurst) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  JsonlOptions options;
  options.deterministic = true;
  options.rate_limit_per_second = 1e-6;  // effectively no refill
  options.rate_burst = 1.0;
  const std::vector<std::string> out =
      RunSession(service, options,
                 {R"({"id":"a","graph":"fig2","tau":2})",
                  R"({"id":"b","graph":"fig2","tau":2})"});
  ASSERT_EQ(out.size(), 2u);
  EXPECT_NE(out[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(out[1].find("\"error\":\"resource_exhausted\""),
            std::string::npos);
  EXPECT_NE(out[1].find("session rate limit"), std::string::npos);
  EXPECT_EQ(service.Stats().transport.queries_shed_quota, 1u);
}

TEST(SessionQuotaTest, GlobalBucketIsSharedAcrossSessions) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  TokenBucket global(1e-6, 1.0);
  JsonlOptions options;
  options.deterministic = true;
  options.global_rate_limiter = &global;

  const std::vector<std::string> first = RunSession(
      service, options, {R"({"id":"a","graph":"fig2","tau":2})"});
  ASSERT_EQ(first.size(), 1u);
  EXPECT_NE(first[0].find("\"ok\":true"), std::string::npos);

  // A different session against the same bucket: the one burst token is
  // spent, so this query is shed server-wide.
  const std::vector<std::string> second = RunSession(
      service, options, {R"({"id":"b","graph":"fig2","tau":2})"});
  ASSERT_EQ(second.size(), 1u);
  EXPECT_NE(second[0].find("\"error\":\"resource_exhausted\""),
            std::string::npos);
  EXPECT_NE(second[0].find("server rate limit"), std::string::npos);
}

TEST(SessionQuotaTest, ControlOpsAreExemptFromQuotas) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  JsonlOptions options;
  options.deterministic = true;
  options.rate_limit_per_second = 1e-6;
  options.rate_burst = 1.0;
  // query (spends the token), then stats and list: both must still run.
  const std::vector<std::string> out =
      RunSession(service, options,
                 {R"({"id":"a","graph":"fig2","tau":2})", R"({"op":"stats"})",
                  R"({"op":"list"})"});
  ASSERT_EQ(out.size(), 3u);
  EXPECT_NE(out[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(out[1].find("queries_served"), std::string::npos);
  EXPECT_NE(out[2].find("fig2"), std::string::npos);
}

// ---------------------------------------------------------------------------
// JSONL error-code conformance: each InterruptReason has its own code.

TEST(ErrorCodeConformanceTest, DeadlineExceededOnTheWire) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  JsonlOptions options;
  options.deterministic = true;
  std::istringstream in(
      R"({"id":"d","graph":"fig2","tau":2,"deadline_ms":0.000001})"
      "\n");
  std::ostringstream out;
  ASSERT_TRUE(RunJsonlStream(service, in, out, options).ok());
  EXPECT_NE(out.str().find("\"error\":\"deadline_exceeded\""),
            std::string::npos)
      << out.str();
}

TEST(ErrorCodeConformanceTest, ResourceExhaustedOnTheWire) {
  QueryService service;
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(60, 900, 0.5, 5)).ok());
  JsonlOptions options;
  options.deterministic = true;
  // 1 MB covers nothing once the process RSS is counted against it.
  std::istringstream in(R"({"id":"m","graph":"g","memory_limit_mb":1})"
                        "\n");
  std::ostringstream out;
  ASSERT_TRUE(RunJsonlStream(service, in, out, options).ok());
  EXPECT_NE(out.str().find("\"error\":\"resource_exhausted\""),
            std::string::npos)
      << out.str();
}

TEST(ErrorCodeConformanceTest, CancelledOnTheWire) {
  ServiceOptions options;
  options.num_workers = 1;
  options.start_workers = false;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  QueryRequest request = MbcRequest("fig2", 2, "x");
  Result<std::future<QueryResponse>> submitted = service.Submit(request);
  ASSERT_TRUE(submitted.ok());
  service.Shutdown();  // queued-but-unstarted work resolves to kCancelled
  QueryResponse response = submitted.value().get();
  EXPECT_TRUE(response.status.IsCancelled()) << response.status.ToString();
  const std::string line =
      SerializeResponse(request, response, JsonlOptions{});
  EXPECT_NE(line.find("\"error\":\"cancelled\""), std::string::npos) << line;
}

TEST(ErrorCodeConformanceTest, DegradedFlagOnTheWire) {
  QueryRequest request = MbcRequest("fig2", 2, "d");
  QueryResponse response;
  response.id = "d";
  response.degraded = true;
  response.result.beta = 0;
  JsonlOptions deterministic;
  deterministic.deterministic = true;
  const std::string line = SerializeResponse(request, response, deterministic);
  EXPECT_NE(line.find("\"degraded\":true"), std::string::npos) << line;
  // Present in non-deterministic mode too: degradation is a correctness
  // property of the answer, not a timing artifact.
  const std::string timed =
      SerializeResponse(request, response, JsonlOptions{});
  EXPECT_NE(timed.find("\"degraded\":true"), std::string::npos) << timed;
}

// ---------------------------------------------------------------------------
// Stats surface

TEST(StatsJsonTest, ExportsOverloadFieldsAndOmitsUptimeWhenDeterministic) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  ASSERT_TRUE(service.Query(MbcRequest("fig2", 2)).status.ok());

  const std::string timed = service.StatsJson(/*deterministic=*/false);
  EXPECT_NE(timed.find("\"overload_state\":\"normal\""), std::string::npos);
  EXPECT_NE(timed.find("\"queries_shed_deadline\":0"), std::string::npos);
  EXPECT_NE(timed.find("\"queries_shed_overload\":0"), std::string::npos);
  EXPECT_NE(timed.find("\"queries_degraded\":0"), std::string::npos);
  EXPECT_NE(timed.find("\"degraded_insertions\":0"), std::string::npos);
  EXPECT_NE(timed.find("\"queries_shed_quota\":0"), std::string::npos);
  EXPECT_NE(timed.find("\"submit_retries\":0"), std::string::npos);
  EXPECT_NE(timed.find("\"uptime_seconds\":"), std::string::npos);

  const std::string deterministic = service.StatsJson(/*deterministic=*/true);
  EXPECT_EQ(deterministic.find("uptime_seconds"), std::string::npos)
      << deterministic;
  EXPECT_NE(deterministic.find("\"overload_state\":\"normal\""),
            std::string::npos);
}

}  // namespace
}  // namespace mbc

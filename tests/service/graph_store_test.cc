// Copyright 2026 The balanced-clique Authors.
#include "src/service/graph_store.h"

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fingerprint.h"
#include "src/common/memory.h"
#include "src/common/status.h"
#include "src/datasets/generators.h"
#include "src/graph/binary_io.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

TEST(GraphStoreTest, LoadFindEvictRoundTrip) {
  GraphStore store;
  ASSERT_TRUE(store.Load("fig2", Figure2Graph()).ok());
  EXPECT_EQ(store.size(), 1u);

  Result<GraphStore::SnapshotPtr> found = store.Find("fig2");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value()->name(), "fig2");
  EXPECT_EQ(found.value()->graph().NumVertices(),
            Figure2Graph().NumVertices());

  ASSERT_TRUE(store.Evict("fig2").ok());
  EXPECT_EQ(store.size(), 0u);
  EXPECT_EQ(store.Find("fig2").status().code(), StatusCode::kNotFound);
}

TEST(GraphStoreTest, FindUnknownNameIsNotFound) {
  GraphStore store;
  EXPECT_EQ(store.Find("nope").status().code(), StatusCode::kNotFound);
  EXPECT_EQ(store.Evict("nope").code(), StatusCode::kNotFound);
}

TEST(GraphStoreTest, DuplicateLoadIsRejected) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", Figure2Graph()).ok());
  const Status again = store.Load("g", Figure2Graph());
  EXPECT_EQ(again.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(store.size(), 1u);
}

TEST(GraphStoreTest, EmptyNameIsRejected) {
  GraphStore store;
  EXPECT_EQ(store.Load("", Figure2Graph()).code(),
            StatusCode::kInvalidArgument);
}

TEST(GraphStoreTest, FingerprintIsContentAddressed) {
  GraphStore store;
  // The same bytes under two names fingerprint identically; a different
  // graph fingerprints differently.
  ASSERT_TRUE(store.Load("a", RandomSignedGraph(64, 400, 0.4, 7)).ok());
  ASSERT_TRUE(store.Load("b", RandomSignedGraph(64, 400, 0.4, 7)).ok());
  ASSERT_TRUE(store.Load("c", RandomSignedGraph(64, 400, 0.4, 8)).ok());
  const uint64_t fp_a = store.Find("a").value()->fingerprint();
  const uint64_t fp_b = store.Find("b").value()->fingerprint();
  const uint64_t fp_c = store.Find("c").value()->fingerprint();
  EXPECT_EQ(fp_a, fp_b);
  EXPECT_NE(fp_a, fp_c);
}

TEST(GraphStoreTest, FingerprintSurvivesEvictAndReload) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", RandomSignedGraph(32, 150, 0.5, 3)).ok());
  const uint64_t before = store.Find("g").value()->fingerprint();
  ASSERT_TRUE(store.Evict("g").ok());
  ASSERT_TRUE(store.Load("g", RandomSignedGraph(32, 150, 0.5, 3)).ok());
  EXPECT_EQ(store.Find("g").value()->fingerprint(), before);
}

TEST(GraphStoreTest, EvictedSnapshotStaysAliveWhileHeld) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", Figure2Graph()).ok());
  GraphStore::SnapshotPtr held = store.Find("g").value();
  ASSERT_TRUE(store.Evict("g").ok());
  // The snapshot (and the graph inside it) must remain valid: a running
  // query holds exactly this kind of reference across an evict.
  EXPECT_EQ(held->graph().NumVertices(), Figure2Graph().NumVertices());
  EXPECT_NE(held->fingerprint(), 0u);
}

TEST(GraphStoreTest, MemoryAccountingSettles) {
  const size_t baseline = MemoryTracker::Global().current_bytes();
  {
    GraphStore store;
    ASSERT_TRUE(store.Load("g", RandomSignedGraph(128, 800, 0.4, 1)).ok());
    EXPECT_GT(MemoryTracker::Global().current_bytes(), baseline);
    EXPECT_GT(store.TotalMemoryBytes(), 0u);
    ASSERT_TRUE(store.Evict("g").ok());
  }
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), baseline);
}

TEST(GraphStoreTest, ListIsSortedAndComplete) {
  GraphStore store;
  ASSERT_TRUE(store.Load("zeta", Figure2Graph()).ok());
  ASSERT_TRUE(store.Load("alpha", RandomSignedGraph(16, 40, 0.5, 2)).ok());
  const std::vector<GraphStore::ListEntry> entries = store.List();
  ASSERT_EQ(entries.size(), 2u);
  EXPECT_EQ(entries[0].name, "alpha");
  EXPECT_EQ(entries[1].name, "zeta");
  EXPECT_EQ(entries[1].num_vertices, Figure2Graph().NumVertices());
  EXPECT_GT(entries[0].memory_bytes, 0u);
}

TEST(GraphStoreTest, LoadFromMissingFileFails) {
  GraphStore store;
  EXPECT_FALSE(store.LoadFromFile("g", "/nonexistent/graph.txt").ok());
  EXPECT_EQ(store.size(), 0u);
}

std::string TempGraphPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

size_t StatmResidentBytes() {
  std::ifstream statm("/proc/self/statm");
  size_t total_pages = 0;
  size_t resident_pages = 0;
  statm >> total_pages >> resident_pages;
  return resident_pages * static_cast<size_t>(sysconf(_SC_PAGESIZE));
}

uint64_t FileBytes(const std::string& path) {
  std::ifstream probe(path, std::ios::binary | std::ios::ate);
  return probe ? static_cast<uint64_t>(probe.tellg()) : 0;
}

TEST(GraphStoreMmapTest, SniffsV2AndLoadsZeroCopy) {
  BsclOptions options;
  options.num_vertices = 60000;
  options.num_edges = 400000;
  options.seed = 13;
  const SignedGraph graph = GenerateBsclSignedGraph(options);
  const std::string path = TempGraphPath("store_mmap.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  const uint64_t file_bytes = FileBytes(path);
  ASSERT_GT(file_bytes, 0u);

  GraphStore store;
  const size_t rss_before = StatmResidentBytes();
  const size_t tracked_before = MemoryTracker::Global().current_bytes();
  ASSERT_TRUE(store.LoadFromFile("big", path).ok());
  const size_t tracked_after = MemoryTracker::Global().current_bytes();
  const size_t rss_after = StatmResidentBytes();

  Result<GraphStore::SnapshotPtr> found = store.Find("big");
  ASSERT_TRUE(found.ok());
  EXPECT_TRUE(found.value()->mapped());
  EXPECT_EQ(found.value()->mapped_bytes(), file_bytes);
  EXPECT_EQ(found.value()->graph().NumEdges(), graph.NumEdges());
  // Content addressing survives the zero-copy path: the stored
  // fingerprint hint must equal the full-pass fingerprint.
  EXPECT_EQ(found.value()->fingerprint(), FingerprintSignedGraph(graph));

  // The acceptance bound: a cold mmap load must keep steady-state RSS
  // growth under 1.5x the on-disk CSR size (the copying reader adds a
  // full heap copy; the mapped load faults only header + offsets pages).
  const uint64_t budget = file_bytes + file_bytes / 2;
  EXPECT_LT(rss_after - rss_before, budget)
      << "rss grew " << (rss_after - rss_before) << " for a " << file_bytes
      << "-byte file";
  EXPECT_LT(tracked_after - tracked_before, budget);
  // List surfaces the mapping so `mbc_cli list` can show it.
  const std::vector<GraphStore::ListEntry> entries = store.List();
  ASSERT_EQ(entries.size(), 1u);
  EXPECT_TRUE(entries[0].mapped);
  EXPECT_EQ(entries[0].mapped_bytes, file_bytes);
  std::remove(path.c_str());
}

TEST(GraphStoreMmapTest, LegacyV1LoadsViaCopyingReader) {
  const SignedGraph graph = Figure2Graph();
  const std::string path = TempGraphPath("store_v1.mbcg");
  BinaryWriteOptions v1;
  v1.version = 1;
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path, v1).ok());
  GraphStore store;
  ASSERT_TRUE(store.LoadFromFile("old", path).ok());
  Result<GraphStore::SnapshotPtr> found = store.Find("old");
  ASSERT_TRUE(found.ok());
  EXPECT_FALSE(found.value()->mapped());
  EXPECT_EQ(found.value()->graph().NumEdges(), graph.NumEdges());
  std::remove(path.c_str());
}

TEST(GraphStoreMmapTest, MappedAccountingSettlesOnEvict) {
  const SignedGraph graph = RandomSignedGraph(2000, 12000, 0.3, 21);
  const std::string path = TempGraphPath("store_mmap_settle.mbcg");
  ASSERT_TRUE(WriteSignedGraphBinary(graph, path).ok());
  const size_t baseline = MemoryTracker::Global().current_bytes();
  {
    GraphStore store;
    ASSERT_TRUE(store.LoadFromFile("m", path).ok());
    EXPECT_TRUE(store.Find("m").value()->mapped());
    ASSERT_TRUE(store.Evict("m").ok());
  }
  EXPECT_EQ(MemoryTracker::Global().current_bytes(), baseline);
  std::remove(path.c_str());
}

TEST(FingerprintTest, HasherIsDeterministicAndOrderSensitive) {
  Fnv1aHasher a;
  a.Mix(1);
  a.Mix(2);
  Fnv1aHasher b;
  b.Mix(2);
  b.Mix(1);
  Fnv1aHasher c;
  c.Mix(1);
  c.Mix(2);
  EXPECT_NE(a.hash(), b.hash());
  EXPECT_EQ(a.hash(), c.hash());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Adversarial framing: the transport layer must survive anything the
// network hands it — lines split at arbitrary byte boundaries, many
// lines merged into one write, oversized lines, truncated multi-byte
// UTF-8, abrupt disconnects mid-line, binary garbage — without crashing,
// reordering responses, or answering a malformed frame with anything but
// exactly one error frame. Seeded LCG throughout, so every run replays
// the same adversity.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <utility>
#include <vector>

#include "src/service/jsonl.h"
#include "src/service/query_service.h"
#include "src/service/transport.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::ConnectLoopback;
using testing_util::RandomSignedGraph;
using testing_util::RecvAll;
using testing_util::SendAll;

constexpr size_t kMaxLineBytes = 256;

uint64_t Advance(uint64_t* state) {
  *state = *state * 6364136223846793005ull + 1442695040888963407ull;
  return *state >> 16;
}

// ---------------------------------------------------------------------------
// LineFramer properties (deterministic chunking, no sockets involved).

std::vector<LineFramer::Line> FrameInChunks(const std::string& bytes,
                                            uint64_t seed) {
  LineFramer framer(kMaxLineBytes);
  std::vector<LineFramer::Line> lines;
  uint64_t state = seed;
  size_t pos = 0;
  while (pos < bytes.size()) {
    // Chunk sizes from 1 byte up to "everything at once".
    const size_t max_chunk = 1 + Advance(&state) % (bytes.size() + 16);
    const size_t chunk = std::min(max_chunk, bytes.size() - pos);
    framer.Feed(bytes.data() + pos, chunk);
    pos += chunk;
    LineFramer::Line line;
    while (framer.Next(&line)) lines.push_back(std::move(line));
  }
  framer.Finish();
  LineFramer::Line line;
  while (framer.Next(&line)) lines.push_back(std::move(line));
  return lines;
}

TEST(LineFramerFuzzTest, ChunkingNeverChangesTheLines) {
  uint64_t state = 7;
  for (uint32_t round = 0; round < 50; ++round) {
    // Build a random stream: short lines, empty lines, oversized lines,
    // binary garbage, an optional trailing newline-less fragment.
    std::string bytes;
    std::vector<std::pair<std::string, bool>> expected;  // text, oversized
    const uint32_t num_lines = 1 + Advance(&state) % 12;
    for (uint32_t i = 0; i < num_lines; ++i) {
      const uint32_t pick = Advance(&state) % 5;
      std::string text;
      if (pick == 0) {
        // empty line
      } else if (pick == 1) {
        text = std::string(kMaxLineBytes + 1 + Advance(&state) % 64, 'y');
      } else if (pick == 2) {
        // Binary garbage including NUL and truncated UTF-8 lead bytes.
        const size_t len = 1 + Advance(&state) % 40;
        for (size_t b = 0; b < len; ++b) {
          char c = static_cast<char>(Advance(&state) % 256);
          if (c == '\n') c = '\xe2';  // a dangling UTF-8 lead byte
          text += c;
        }
      } else {
        text = "{\"id\":\"r" + std::to_string(i) + "\"}";
      }
      const bool oversized = text.size() > kMaxLineBytes;
      expected.emplace_back(oversized ? "" : text, oversized);
      bytes += text;
      bytes += '\n';
    }
    const bool trailing_fragment = Advance(&state) % 2 == 0;
    if (trailing_fragment) {
      bytes += "{\"tail\":";  // cut off mid-object, no newline
      expected.emplace_back("{\"tail\":", false);
    }

    for (const uint64_t chunk_seed :
         {uint64_t{1}, uint64_t{99}, uint64_t{state}}) {
      const std::vector<LineFramer::Line> lines =
          FrameInChunks(bytes, chunk_seed);
      ASSERT_EQ(lines.size(), expected.size()) << "round " << round;
      for (size_t i = 0; i < lines.size(); ++i) {
        EXPECT_EQ(lines[i].oversized, expected[i].second)
            << "round " << round << " line " << i;
        if (!lines[i].oversized) {
          EXPECT_EQ(lines[i].text, expected[i].first)
              << "round " << round << " line " << i;
        }
      }
    }
  }
}

TEST(LineFramerFuzzTest, OversizedBytesAreDiscardedNotBuffered) {
  LineFramer framer(64);
  // Stream 1 MiB of a single unterminated line through the framer; it
  // must not accumulate the payload (the discard path clears partial_).
  const std::string blast(4096, 'z');
  for (int i = 0; i < 256; ++i) framer.Feed(blast.data(), blast.size());
  framer.Feed("\n", 1);
  LineFramer::Line line;
  ASSERT_TRUE(framer.Next(&line));
  EXPECT_TRUE(line.oversized);
  EXPECT_TRUE(line.text.empty());
  EXPECT_FALSE(framer.Next(&line));
}

// ---------------------------------------------------------------------------
// Socket-level adversity against a live server.

class FramingFuzzServer {
 public:
  FramingFuzzServer() : server_(SocketServerOptions{}) {
    EXPECT_TRUE(server_.Start().ok());
    ServiceOptions options;
    options.num_workers = 2;
    options.on_task_complete = [this] { server_.Wake(); };
    service_ = std::make_unique<QueryService>(options);
    EXPECT_TRUE(
        service_->store().Load("g", RandomSignedGraph(24, 110, 0.4, 41)).ok());
    JsonlOptions jsonl;
    jsonl.deterministic = true;
    jsonl.max_line_bytes = kMaxLineBytes;
    thread_ = std::thread(
        [this, jsonl] { EXPECT_TRUE(server_.Serve(*service_, jsonl).ok()); });
  }

  ~FramingFuzzServer() {
    server_.RequestDrain();
    thread_.join();
  }

  uint16_t port() const { return server_.port(); }
  QueryService& service() { return *service_; }

 private:
  SocketServer server_;
  std::unique_ptr<QueryService> service_;
  std::thread thread_;
};

size_t CountLines(const std::string& text, const std::string& needle) {
  size_t count = 0;
  std::istringstream in(text);
  for (std::string line; std::getline(in, line);) {
    if (line.find(needle) != std::string::npos) ++count;
  }
  return count;
}

// A batch with interleaved valid queries and malformed frames, written
// over the socket in randomized fragments: every response arrives, in
// order, with exactly one error frame per malformed line.
TEST(TransportFramingFuzzTest, SplitAndMergedWritesPreserveTheProtocol) {
  FramingFuzzServer server;
  uint64_t state = 1234;
  for (uint32_t round = 0; round < 8; ++round) {
    std::string batch;
    uint32_t valid = 0;
    uint32_t malformed = 0;
    uint32_t oversized = 0;
    const uint32_t num_lines = 12 + Advance(&state) % 12;
    for (uint32_t i = 0; i < num_lines; ++i) {
      switch (Advance(&state) % 6) {
        case 0:
          batch += "{\"bad json\n";
          ++malformed;
          break;
        case 1:
          batch += "{\"graph\":\"g\",\"nope\":true}\n";
          ++malformed;
          break;
        case 2:
          batch +=
              "{\"pad\":\"" + std::string(kMaxLineBytes, 'p') + "\"}\n";
          ++oversized;
          break;
        case 3:
          batch += "\xff\xfe\xe2\x28garbage\n";  // invalid UTF-8 bytes
          ++malformed;
          break;
        default:
          batch += "{\"id\":\"v" + std::to_string(i) +
                   "\",\"graph\":\"g\",\"kind\":\"mbc\",\"tau\":" +
                   std::to_string(1 + i % 3) + "}\n";
          ++valid;
          break;
      }
    }

    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    // Random fragmentation: 1-byte dribbles up to multi-line merges.
    size_t pos = 0;
    while (pos < batch.size()) {
      const size_t chunk =
          std::min(1 + Advance(&state) % 96, batch.size() - pos);
      ASSERT_TRUE(SendAll(fd, batch.substr(pos, chunk)));
      pos += chunk;
    }
    ::shutdown(fd, SHUT_WR);
    const std::string response = RecvAll(fd);
    ::close(fd);

    EXPECT_EQ(CountLines(response, "\"ok\":true"), valid)
        << "round " << round << "\n" << response;
    EXPECT_EQ(CountLines(response, "\"ok\":false"), malformed + oversized)
        << "round " << round << "\n" << response;
    EXPECT_EQ(CountLines(response, "frame limit"), oversized)
        << "round " << round << "\n" << response;
    // In-order: the i-th "v<i>" id appears before the (i+1)-th.
    size_t cursor = 0;
    for (uint32_t i = 0; i < num_lines; ++i) {
      const std::string id = "\"id\":\"v" + std::to_string(i) + "\"";
      const size_t at = response.find(id);
      if (at == std::string::npos) continue;
      EXPECT_GE(at, cursor) << "response out of order at v" << i;
      cursor = at;
    }
  }
}

// Abrupt disconnects at random points — mid-line, mid-pipeline, before
// reading any response — must never take the server down: a follow-up
// well-formed client still gets full service.
TEST(TransportFramingFuzzTest, AbruptDisconnectsDoNotKillTheServer) {
  FramingFuzzServer server;
  uint64_t state = 777;
  for (uint32_t round = 0; round < 12; ++round) {
    const int fd = ConnectLoopback(server.port());
    ASSERT_GE(fd, 0);
    std::string payload;
    for (uint32_t i = 0; i < 4; ++i) {
      payload += "{\"graph\":\"g\",\"kind\":\"mbc\",\"tau\":2}\n";
    }
    payload += "{\"graph\":\"g\",\"kind\":\"pf\"";  // cut mid-object
    const size_t cut = 1 + Advance(&state) % payload.size();
    SendAll(fd, payload.substr(0, cut));
    if (Advance(&state) % 2 == 0) {
      // Half the rounds disconnect without reading a single byte back,
      // leaving the server's write buffer to hit a dead peer.
      struct linger hard = {1, 0};  // RST on close
      ::setsockopt(fd, SOL_SOCKET, SO_LINGER, &hard, sizeof(hard));
    }
    ::close(fd);
  }

  // The server is still fully functional.
  const int fd = ConnectLoopback(server.port());
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(
      SendAll(fd, "{\"id\":\"alive\",\"graph\":\"g\",\"kind\":\"mbc\","
                  "\"tau\":2}\n"));
  ::shutdown(fd, SHUT_WR);
  const std::string response = RecvAll(fd);
  ::close(fd);
  EXPECT_NE(response.find("\"id\":\"alive\""), std::string::npos) << response;
  EXPECT_NE(response.find("\"ok\":true"), std::string::npos) << response;
}

}  // namespace
}  // namespace mbc

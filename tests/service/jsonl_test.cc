// Copyright 2026 The balanced-clique Authors.
#include "src/service/jsonl.h"

#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;

TEST(JsonlParseTest, ParsesFlatObject) {
  Result<JsonlFields> fields = ParseJsonlLine(
      R"({"op":"query","graph":"g","tau":3,"no_cache":true})");
  ASSERT_TRUE(fields.ok()) << fields.status().ToString();
  EXPECT_EQ(fields.value().at("op"), "query");
  EXPECT_EQ(fields.value().at("graph"), "g");
  EXPECT_EQ(fields.value().at("tau"), "3");
  EXPECT_EQ(fields.value().at("no_cache"), "true");
}

TEST(JsonlParseTest, DecodesStringEscapes) {
  Result<JsonlFields> fields =
      ParseJsonlLine(R"({"id":"a\"b\\c\nd\te"})");
  ASSERT_TRUE(fields.ok());
  EXPECT_EQ(fields.value().at("id"), "a\"b\\c\nd\te");
}

TEST(JsonlParseTest, ToleratesWhitespaceAndEmptyObject) {
  EXPECT_TRUE(ParseJsonlLine("  { \"a\" : 1 , \"b\" : \"x\" }  ").ok());
  Result<JsonlFields> empty = ParseJsonlLine("{}");
  ASSERT_TRUE(empty.ok());
  EXPECT_TRUE(empty.value().empty());
}

TEST(JsonlParseTest, RejectsMalformedInput) {
  const char* bad[] = {
      "",                           // not an object
      "42",                         // not an object
      R"({"a":1)",                  // unterminated
      R"({"a":1} trailing)",        // trailing garbage
      R"({"a":{"nested":1}})",      // nested object
      R"({"a":[1,2]})",             // nested array
      R"({"a":1,"a":2})",           // duplicate key
      R"({a:1})",                   // unquoted key
      R"({"a" 1})",                 // missing colon
      R"({"a":"unterminated})",     // unterminated string
  };
  for (const char* line : bad) {
    EXPECT_FALSE(ParseJsonlLine(line).ok()) << line;
  }
}

TEST(JsonlParseTest, BuildsQueryRequest) {
  Result<JsonlFields> fields = ParseJsonlLine(
      R"({"id":"q7","graph":"g","kind":"pf","algo":"bs",)"
      R"("time_limit_seconds":1.5,"memory_limit_mb":64,"no_cache":true})");
  ASSERT_TRUE(fields.ok());
  Result<QueryRequest> request = QueryRequestFromFields(fields.value());
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().id, "q7");
  EXPECT_EQ(request.value().graph, "g");
  EXPECT_EQ(request.value().kind, QueryKind::kPf);
  EXPECT_EQ(request.value().algo, "bs");
  EXPECT_DOUBLE_EQ(request.value().time_limit_seconds, 1.5);
  EXPECT_EQ(request.value().memory_limit_mb, 64u);
  EXPECT_TRUE(request.value().no_cache);
}

TEST(JsonlParseTest, ParsesParallelThreadsAndWitnesses) {
  Result<JsonlFields> fields = ParseJsonlLine(
      R"({"graph":"g","parallel_threads":4,"witnesses":true})");
  ASSERT_TRUE(fields.ok());
  Result<QueryRequest> request = QueryRequestFromFields(fields.value());
  ASSERT_TRUE(request.ok()) << request.status().ToString();
  EXPECT_EQ(request.value().parallel_threads, 4u);
  EXPECT_TRUE(request.value().witnesses);
  // Both default off.
  Result<JsonlFields> plain = ParseJsonlLine(R"({"graph":"g"})");
  ASSERT_TRUE(plain.ok());
  Result<QueryRequest> defaults = QueryRequestFromFields(plain.value());
  ASSERT_TRUE(defaults.ok());
  EXPECT_EQ(defaults.value().parallel_threads, 0u);
  EXPECT_FALSE(defaults.value().witnesses);
}

TEST(JsonlParseTest, RejectsBadQueryFields) {
  const char* bad[] = {
      R"({"graph":"g","kind":"mbk"})",             // unknown kind
      R"({"graph":"g","tau":-1})",                 // negative tau
      R"({"graph":"g","tau":"many"})",             // non-numeric tau
      R"({"graph":"g","no_cache":"yes"})",         // non-boolean
      R"({"graph":"g","time_limit_seconds":-2})",  // negative budget
      R"({"graph":"g","taau":3})",                 // typo must not pass
      R"({"kind":"mbc"})",                         // missing graph
      R"({"graph":"g","parallel_threads":-1})",    // negative
      R"({"graph":"g","parallel_threads":257})",   // over the cap
      R"({"graph":"g","parallel_threads":"x"})",   // non-numeric
      R"({"graph":"g","witnesses":"yes"})",        // non-boolean
  };
  for (const char* line : bad) {
    Result<JsonlFields> fields = ParseJsonlLine(line);
    ASSERT_TRUE(fields.ok()) << line;
    EXPECT_FALSE(QueryRequestFromFields(fields.value()).ok()) << line;
  }
}

TEST(JsonlSerializeTest, DeterministicModeOmitsTimingFields) {
  QueryRequest request;
  request.id = "q1";
  request.kind = QueryKind::kMbc;
  request.tau = 2;
  QueryResponse response;
  response.id = "q1";
  response.result.clique.left = {1, 2};
  response.result.clique.right = {3};
  response.cached = true;
  response.seconds = 0.25;

  JsonlOptions normal;
  const std::string with_timing = SerializeResponse(request, response, normal);
  EXPECT_NE(with_timing.find("\"cached\":true"), std::string::npos);
  EXPECT_NE(with_timing.find("\"seconds\":"), std::string::npos);

  JsonlOptions deterministic;
  deterministic.deterministic = true;
  const std::string stable =
      SerializeResponse(request, response, deterministic);
  EXPECT_EQ(stable,
            R"({"id":"q1","ok":true,"kind":"mbc","tau":2,"size":3,)"
            R"("left":[1,2],"right":[3]})");
}

TEST(JsonlSerializeTest, ErrorsCarryCodeAndEscapedMessage) {
  QueryRequest request;
  QueryResponse response;
  response.id = "bad";
  response.status = Status::NotFound("graph \"x\" is not loaded");
  const std::string line = SerializeResponse(request, response, {});
  EXPECT_EQ(line,
            R"({"id":"bad","ok":false,"error":"not_found",)"
            R"("message":"graph \"x\" is not loaded"})");
}

TEST(JsonlStreamTest, RunsAFullSession) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  std::istringstream in(
      "# comment and blank lines are skipped\n"
      "\n"
      "{\"id\":\"q1\",\"graph\":\"fig2\",\"tau\":2}\n"
      "{\"id\":\"q2\",\"graph\":\"fig2\",\"kind\":\"pf\"}\n"
      "{\"id\":\"q3\",\"graph\":\"nope\"}\n"
      "{\"op\":\"list\"}\n"
      "{\"op\":\"evict\",\"name\":\"fig2\"}\n"
      "{\"id\":\"q4\",\"graph\":\"fig2\"}\n"
      "not json\n");
  std::ostringstream out;
  JsonlOptions options;
  options.deterministic = true;
  ASSERT_TRUE(RunJsonlStream(service, in, out, options).ok());

  std::vector<std::string> lines;
  std::istringstream result(out.str());
  std::string line;
  while (std::getline(result, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 7u) << out.str();
  EXPECT_EQ(lines[0],
            R"({"id":"q1","ok":true,"kind":"mbc","tau":2,"size":6,)"
            R"("left":[2,3,4],"right":[5,6,7]})");
  EXPECT_EQ(lines[1], R"({"id":"q2","ok":true,"kind":"pf","beta":3})");
  EXPECT_NE(lines[2].find("\"id\":\"q3\",\"ok\":false,\"error\":"
                          "\"not_found\""),
            std::string::npos);
  EXPECT_NE(lines[3].find("\"graphs\":[{\"name\":\"fig2\""),
            std::string::npos);
  EXPECT_NE(lines[4].find("\"ok\":true,\"name\":\"fig2\""),
            std::string::npos);
  // q4 ran after the evict barrier, so the graph is gone.
  EXPECT_NE(lines[5].find("\"error\":\"not_found\""), std::string::npos);
  EXPECT_NE(lines[6].find("\"error\":\"invalid_argument\""),
            std::string::npos);
}

TEST(JsonlStreamTest, LoadOpRoundTripsThroughAFile) {
  const std::string path = ::testing::TempDir() + "/jsonl_fig2.txt";
  {
    // Write Figure 2 as an edge list the load op can read back.
    std::ofstream file(path);
    ASSERT_TRUE(file.is_open());
    const SignedGraph graph = Figure2Graph();
    for (VertexId u = 0; u < graph.NumVertices(); ++u) {
      for (VertexId v : graph.PositiveNeighbors(u)) {
        if (u < v) file << u << " " << v << " 1\n";
      }
      for (VertexId v : graph.NegativeNeighbors(u)) {
        if (u < v) file << u << " " << v << " -1\n";
      }
    }
  }
  QueryService service;
  std::istringstream in("{\"op\":\"load\",\"name\":\"g\",\"path\":\"" + path +
                        "\"}\n"
                        "{\"id\":\"q\",\"graph\":\"g\",\"tau\":2}\n");
  std::ostringstream out;
  JsonlOptions options;
  options.deterministic = true;
  ASSERT_TRUE(RunJsonlStream(service, in, out, options).ok());
  EXPECT_NE(out.str().find("\"vertices\":8"), std::string::npos) << out.str();
  EXPECT_NE(out.str().find("\"size\":6"), std::string::npos) << out.str();
}

TEST(JsonlSerializeTest, GmbcWitnessesSerializeOnlyOnRequest) {
  QueryRequest request;
  request.id = "g1";
  request.kind = QueryKind::kGmbc;
  QueryResponse response;
  response.id = "g1";
  response.result.beta = 1;
  response.result.gmbc_sizes = {4, 2};
  BalancedClique tau0;
  tau0.left = {0, 1};
  tau0.right = {2, 3};
  BalancedClique tau1;
  tau1.left = {0};
  tau1.right = {2};
  response.result.gmbc_cliques = {tau0, tau1};

  JsonlOptions deterministic;
  deterministic.deterministic = true;
  const std::string without =
      SerializeResponse(request, response, deterministic);
  EXPECT_EQ(without.find("\"cliques\""), std::string::npos) << without;
  EXPECT_NE(without.find("\"sizes\":[4,2]"), std::string::npos) << without;

  request.witnesses = true;
  const std::string with = SerializeResponse(request, response, deterministic);
  EXPECT_NE(
      with.find(
          R"("cliques":[{"left":[0,1],"right":[2,3]},{"left":[0],"right":[2]}])"),
      std::string::npos)
      << with;
}

}  // namespace
}  // namespace mbc

#!/usr/bin/env bash
# Copyright 2026 The balanced-clique Authors.
#
# SIGTERM graceful drain over TCP: a server with a pipeline of queries in
# flight must, on SIGTERM, stop accepting, finish and flush every
# already-received query, and exit 0 — and the client must see one
# response per request.
#
#   sigterm_drain_test.sh <mbc_serve> <mbc_cli>
set -u

MBC_SERVE="$1"
MBC_CLI="$2"
NUM_QUERIES=40

WORK="$(mktemp -d)"
SERVER_PID=""
cleanup() {
  [ -n "$SERVER_PID" ] && kill -9 "$SERVER_PID" 2>/dev/null
  rm -rf "$WORK"
}
trap cleanup EXIT
cd "$WORK" || exit 1

"$MBC_CLI" generate --dataset Bitcoin --scale 0.0625 --out g.bin \
  > /dev/null || { echo "FAIL: generate"; exit 1; }

# no_cache so every query runs a real solve and the drain has work to do.
: > batch.jsonl
for i in $(seq 1 "$NUM_QUERIES"); do
  echo "{\"id\":\"q$i\",\"graph\":\"g\",\"tau\":1,\"no_cache\":true}" \
    >> batch.jsonl
done

"$MBC_SERVE" --listen 127.0.0.1:0 --workers 2 --deterministic \
  --load g=g.bin > port.txt 2> serve.log &
SERVER_PID=$!

PORT=""
for _ in $(seq 1 200); do
  PORT="$(head -n1 port.txt 2>/dev/null)"
  [ -n "$PORT" ] && break
  sleep 0.05
done
[ -n "$PORT" ] || { echo "FAIL: server never printed its port"; exit 1; }

"$MBC_CLI" batch --connect "127.0.0.1:$PORT" --input batch.jsonl \
  > responses.jsonl &
CLIENT_PID=$!

# Let the pipeline land on the server, then pull the plug mid-flight.
sleep 0.1
kill -TERM "$SERVER_PID"

wait "$CLIENT_PID"
CLIENT_RC=$?
wait "$SERVER_PID"
SERVER_RC=$?
SERVER_PID=""

[ "$SERVER_RC" -eq 0 ] || {
  echo "FAIL: server exit code $SERVER_RC after SIGTERM"
  cat serve.log
  exit 1
}
[ "$CLIENT_RC" -eq 0 ] || { echo "FAIL: client exit code $CLIENT_RC"; exit 1; }

GOT="$(wc -l < responses.jsonl)"
[ "$GOT" -eq "$NUM_QUERIES" ] || {
  echo "FAIL: expected $NUM_QUERIES responses, got $GOT"
  exit 1
}
grep -q "\"id\":\"q$NUM_QUERIES\"" responses.jsonl || {
  echo "FAIL: last response missing"
  exit 1
}
if grep -q '"ok":false' responses.jsonl; then
  echo "FAIL: a drained query was answered with an error:"
  grep '"ok":false' responses.jsonl
  exit 1
fi
echo "PASS: $GOT responses drained, server exited 0"

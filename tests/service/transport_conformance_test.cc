// Copyright 2026 The balanced-clique Authors.
//
// Protocol conformance across transports: the same JSONL batch — queries,
// control-op barriers, parse errors, unknown fields, comments, blank
// lines, an oversized line, a not-found graph — must produce
// byte-identical responses whether it runs over the blocking stdio
// transport or a loopback TCP connection, on one worker or four. The
// batch exercises the per-session ordering rules: a load must be visible
// to the query after it, an evict must hide the graph from the query
// after it, and responses come back strictly in request order.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/graph_io.h"
#include "src/service/jsonl.h"
#include "src/service/query_service.h"
#include "src/service/transport.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

constexpr size_t kMaxLineBytes = 512;

std::string GraphFile(uint32_t g) {
  // Pid-unique path: under `ctest -j` every TEST_P instance is its own
  // process, and concurrent processes rewriting one shared file race a
  // reader into a partially-written graph.
  const std::string path = ::testing::TempDir() + "/conformance_g" +
                           std::to_string(g) + "." +
                           std::to_string(::getpid()) + ".txt";
  static bool written[2] = {false, false};
  if (!written[g]) {
    const SignedGraph graph =
        RandomSignedGraph(24 + 6 * g, 120 + 30 * g, 0.4, 900 + g);
    EXPECT_TRUE(WriteSignedEdgeList(graph, path).ok());
    written[g] = true;
  }
  return path;
}

/// The golden batch: every protocol feature in one stream, with barrier
/// ordering dependencies baked in (load → query → evict → not_found).
std::string BuildBatch() {
  std::ostringstream batch;
  batch << "# transport conformance batch\n";
  batch << "\n";
  batch << "{\"op\":\"load\",\"name\":\"a\",\"path\":\"" << GraphFile(0)
        << "\"}\n";
  batch << "{\"op\":\"load\",\"name\":\"b\",\"path\":\"" << GraphFile(1)
        << "\"}\n";
  batch << "{\"op\":\"list\"}\n";
  for (uint32_t i = 0; i < 24; ++i) {
    const char* graph = (i % 3 == 0) ? "b" : "a";
    batch << "{\"id\":\"q" << i << "\",\"graph\":\"" << graph << "\"";
    switch (i % 4) {
      case 0:
        batch << ",\"kind\":\"mbc\",\"tau\":" << 1 + i % 3;
        break;
      case 1:
        batch << ",\"kind\":\"pf\"";
        break;
      case 2:
        batch << ",\"kind\":\"gmbc\"";
        break;
      default:
        batch << ",\"kind\":\"mbc\",\"tau\":2,\"algo\":\"adv\"";
        break;
    }
    batch << "}\n";
  }
  // Error paths, all answered in order with exactly one frame each.
  batch << "{\"id\":\"bad1\",\"graph\":\"nope\",\"kind\":\"mbc\","
           "\"tau\":3}\n";                                  // not_found
  batch << "{\"id\":\"bad2\",\"graph\":\"a\",\"weird\":1}\n";  // unknown
  batch << "not json at all\n";                                // parse
  batch << "{\"id\":\"big\",\"graph\":\"a\",\"pad\":\""
        << std::string(2 * kMaxLineBytes, 'x') << "\"}\n";     // oversized
  // Barrier semantics: evict between two queries of the same graph.
  batch << "{\"id\":\"before\",\"graph\":\"b\",\"kind\":\"pf\"}\n";
  batch << "{\"op\":\"evict\",\"name\":\"b\"}\n";
  batch << "{\"id\":\"after\",\"graph\":\"b\",\"kind\":\"pf\"}\n";
  // The heuristic / tolerant tier: a heuristic answer (tagged inexact on
  // the wire), a tolerant answer (reports its frustration), a tolerance
  // on a non-tolerant kind (rejected), warm_start on a non-mbc kind
  // (rejected), and a warm-started exact query (same answer as cold).
  batch << "{\"id\":\"h1\",\"graph\":\"a\",\"kind\":\"mbc_heu\","
           "\"tau\":2}\n";
  batch << "{\"id\":\"t1\",\"graph\":\"a\",\"kind\":\"mbc_tol\","
           "\"tau\":2,\"tolerance\":2}\n";
  batch << "{\"id\":\"badtol\",\"graph\":\"a\",\"kind\":\"mbc\","
           "\"tau\":2,\"tolerance\":1}\n";
  batch << "{\"id\":\"badwarm\",\"graph\":\"a\",\"kind\":\"pf\","
           "\"warm_start\":true}\n";
  batch << "{\"id\":\"w1\",\"graph\":\"a\",\"kind\":\"mbc\",\"tau\":2,"
           "\"warm_start\":true}\n";
  return batch.str();
}

JsonlOptions DeterministicOptions() {
  JsonlOptions jsonl;
  jsonl.deterministic = true;
  jsonl.max_line_bytes = kMaxLineBytes;
  return jsonl;
}

std::string RunViaStdio(const std::string& batch, size_t workers) {
  ServiceOptions options;
  options.num_workers = workers;
  QueryService service(options);
  std::istringstream in(batch);
  std::ostringstream out;
  StdioTransport transport(in, out);
  EXPECT_TRUE(transport.Serve(service, DeterministicOptions()).ok());
  return out.str();
}

std::string RunViaSocket(const std::string& batch, size_t workers) {
  SocketServer server(SocketServerOptions{});
  EXPECT_TRUE(server.Start().ok());
  ServiceOptions options;
  options.num_workers = workers;
  options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(options);
  std::thread serving(
      [&] { EXPECT_TRUE(server.Serve(service, DeterministicOptions()).ok()); });
  std::istringstream in(batch);
  std::ostringstream out;
  const Status status =
      RunJsonlSocketClient("127.0.0.1", server.port(), in, out);
  server.RequestDrain();
  serving.join();
  EXPECT_TRUE(status.ok()) << status.ToString();
  // The transport counted this connection in and out.
  const TransportStats transport = service.Stats().transport;
  EXPECT_EQ(transport.connections_accepted, 1u);
  EXPECT_EQ(transport.connections_active, 0);
  EXPECT_GT(transport.frames_in, 0u);
  EXPECT_EQ(transport.frames_in, transport.frames_out);
  return out.str();
}

struct Variant {
  const char* name;
  std::string (*run)(const std::string&, size_t);
  size_t workers;
};

class TransportConformanceTest : public ::testing::TestWithParam<Variant> {};

TEST_P(TransportConformanceTest, MatchesSingleWorkerStdioReference) {
  const std::string batch = BuildBatch();
  const std::string reference = RunViaStdio(batch, 1);

  // Shape sanity on the reference itself before comparing against it:
  // every request line got exactly one response frame, in request order.
  std::vector<std::string> lines;
  std::istringstream splitter(reference);
  for (std::string line; std::getline(splitter, line);) {
    lines.push_back(line);
  }
  ASSERT_EQ(lines.size(), 2u + 1u + 24u + 4u + 3u + 5u);
  EXPECT_NE(lines[2].find("\"graphs\":["), std::string::npos);
  for (uint32_t i = 0; i < 24; ++i) {
    EXPECT_NE(lines[3 + i].find("\"id\":\"q" + std::to_string(i) + "\""),
              std::string::npos)
        << lines[3 + i];
    EXPECT_NE(lines[3 + i].find("\"ok\":true"), std::string::npos);
  }
  EXPECT_NE(lines[27].find("\"error\":\"not_found\""), std::string::npos);
  EXPECT_NE(lines[28].find("\"error\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(lines[29].find("\"error\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(lines[30].find("frame limit"), std::string::npos);
  EXPECT_NE(lines[31].find("\"id\":\"before\""), std::string::npos);
  EXPECT_NE(lines[31].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[33].find("\"id\":\"after\""), std::string::npos);
  EXPECT_NE(lines[33].find("\"error\":\"not_found\""), std::string::npos);
  EXPECT_NE(lines[34].find("\"id\":\"h1\""), std::string::npos);
  EXPECT_NE(lines[34].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[34].find("\"exact\":false"), std::string::npos);
  EXPECT_NE(lines[35].find("\"id\":\"t1\""), std::string::npos);
  EXPECT_NE(lines[35].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[35].find("\"frustrated\":"), std::string::npos);
  EXPECT_NE(lines[36].find("\"id\":\"badtol\""), std::string::npos);
  EXPECT_NE(lines[36].find("\"error\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(lines[37].find("\"id\":\"badwarm\""), std::string::npos);
  EXPECT_NE(lines[37].find("\"error\":\"invalid_argument\""),
            std::string::npos);
  EXPECT_NE(lines[38].find("\"id\":\"w1\""), std::string::npos);
  EXPECT_NE(lines[38].find("\"ok\":true"), std::string::npos);

  const Variant variant = GetParam();
  EXPECT_EQ(variant.run(batch, variant.workers), reference) << variant.name;
}

INSTANTIATE_TEST_SUITE_P(
    AllTransports, TransportConformanceTest,
    ::testing::Values(Variant{"stdio_1w", RunViaStdio, 1},
                      Variant{"stdio_4w", RunViaStdio, 4},
                      Variant{"socket_1w", RunViaSocket, 1},
                      Variant{"socket_4w", RunViaSocket, 4}),
    [](const ::testing::TestParamInfo<Variant>& param_info) {
      return std::string(param_info.param.name);
    });

// Exactness-tag cache isolation: a heuristic answer is cached under the
// degraded exactness tag (and its own algo label), so an exact query for
// the same (graph, kind-family, tau) must miss the cache and run the
// exact engine — and vice versa. Likewise tolerant entries are keyed per
// budget.
TEST(TransportConformanceTest, HeuristicCacheEntriesNeverAnswerExactQueries) {
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(options);
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(60, 500, 0.4, 77)).ok());

  QueryRequest heu;
  heu.graph = "g";
  heu.kind = QueryKind::kMbcHeu;
  heu.tau = 2;
  ASSERT_TRUE(service.Query(heu).status.ok());
  const CacheStats after_heu = service.Stats().cache;
  EXPECT_EQ(after_heu.hits, 0u);
  EXPECT_EQ(after_heu.degraded_insertions, 1u);

  // The exact query must not be served from the heuristic's entry.
  QueryRequest exact;
  exact.graph = "g";
  exact.kind = QueryKind::kMbc;
  exact.tau = 2;
  QueryResponse exact_response = service.Query(exact);
  ASSERT_TRUE(exact_response.status.ok());
  EXPECT_FALSE(exact_response.cached);
  EXPECT_EQ(service.Stats().cache.hits, 0u);

  // Re-asking each kind hits its own entry; the answers stay distinct
  // keys even when the cliques coincide.
  EXPECT_TRUE(service.Query(heu).cached);
  EXPECT_TRUE(service.Query(exact).cached);

  // Tolerant entries are keyed per budget: a different tolerance misses.
  QueryRequest tol;
  tol.graph = "g";
  tol.kind = QueryKind::kMbcTol;
  tol.tau = 2;
  tol.tolerance = 1;
  ASSERT_TRUE(service.Query(tol).status.ok());
  EXPECT_TRUE(service.Query(exact).cached);  // exact entry undisturbed
  QueryRequest tol2 = tol;
  tol2.tolerance = 2;
  QueryResponse tol2_response = service.Query(tol2);
  ASSERT_TRUE(tol2_response.status.ok());
  EXPECT_FALSE(tol2_response.cached);
  EXPECT_TRUE(service.Query(tol).cached);

  // A warm-started exact run caches under its own "+warm" label (the
  // sequential engine's witness may differ), so it misses the cold entry.
  QueryRequest warm = exact;
  warm.warm_start = true;
  QueryResponse warm_response = service.Query(warm);
  ASSERT_TRUE(warm_response.status.ok());
  EXPECT_FALSE(warm_response.cached);
  EXPECT_EQ(warm_response.result.clique.size(),
            exact_response.result.clique.size());
  EXPECT_TRUE(service.Query(warm).cached);
}

// Two sequential connections to one server: sessions are independent
// (each gets its own barrier pipeline) but share the worker pool and
// cache, and the per-connection counters add up.
TEST(TransportConformanceTest, SequentialConnectionsShareOneService) {
  SocketServer server(SocketServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ServiceOptions options;
  options.num_workers = 2;
  options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(options);
  std::thread serving(
      [&] { EXPECT_TRUE(server.Serve(service, DeterministicOptions()).ok()); });

  // BuildBatch evicts only "b"; evict "a" too so a second connection
  // replaying the batch sees the same store state as the first.
  const std::string batch = BuildBatch() + "{\"op\":\"evict\",\"name\":\"a\"}\n";
  std::string first, second;
  for (std::string* out : {&first, &second}) {
    std::istringstream in(batch);
    std::ostringstream sink;
    ASSERT_TRUE(
        RunJsonlSocketClient("127.0.0.1", server.port(), in, sink).ok());
    *out = sink.str();
  }
  server.RequestDrain();
  serving.join();

  EXPECT_EQ(first, second);  // deterministic mode hides cache hits
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.transport.connections_accepted, 2u);
  EXPECT_EQ(stats.transport.connections_active, 0);
  EXPECT_GT(stats.cache.hits, 0u);  // second run was served from cache
}

// The admission bound: with max_connections = 1, a second concurrent
// client is answered with exactly one resource_exhausted frame, then
// closed, while the first connection keeps working.
TEST(TransportConformanceTest, OverLimitConnectionGetsOneErrorFrame) {
  SocketServerOptions socket_options;
  socket_options.max_connections = 1;
  SocketServer server(socket_options);
  ASSERT_TRUE(server.Start().ok());
  ServiceOptions options;
  options.num_workers = 1;
  options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(options);
  std::thread serving(
      [&] { EXPECT_TRUE(server.Serve(service, DeterministicOptions()).ok()); });

  // The occupier connects first (and is therefore first in the accept
  // queue), holds its slot without sending EOF, and only closes after
  // the over-limit probe has been turned away.
  const int occupier = testing_util::ConnectLoopback(server.port());
  ASSERT_GE(occupier, 0);
  const int probe = testing_util::ConnectLoopback(server.port());
  ASSERT_GE(probe, 0);
  const std::string rejection = testing_util::RecvAll(probe);
  EXPECT_NE(rejection.find("\"error\":\"resource_exhausted\""),
            std::string::npos)
      << rejection;
  EXPECT_NE(rejection.find("connection limit"), std::string::npos);
  // Exactly one frame: one trailing newline, no second line.
  ASSERT_FALSE(rejection.empty());
  EXPECT_EQ(rejection.find('\n'), rejection.size() - 1);

  // The occupier's slot still works after the rejection.
  const std::string request = "{\"op\":\"list\"}\n";
  ASSERT_TRUE(testing_util::SendAll(occupier, request));
  ::shutdown(occupier, SHUT_WR);
  const std::string response = testing_util::RecvAll(occupier);
  EXPECT_NE(response.find("\"graphs\":["), std::string::npos) << response;
  ::close(occupier);
  ::close(probe);

  server.RequestDrain();
  serving.join();
  const TransportStats stats = service.Stats().transport;
  EXPECT_EQ(stats.connections_accepted, 1u);
  EXPECT_EQ(stats.connections_rejected, 1u);
  EXPECT_EQ(stats.connections_active, 0);
}

// An idle connection is closed after the timeout with one cancelled
// frame; a connection with traffic stays alive.
TEST(TransportConformanceTest, IdleConnectionIsTimedOut) {
  SocketServerOptions socket_options;
  socket_options.idle_timeout_seconds = 0.1;
  SocketServer server(socket_options);
  ASSERT_TRUE(server.Start().ok());
  ServiceOptions options;
  options.num_workers = 1;
  options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(options);
  std::thread serving(
      [&] { EXPECT_TRUE(server.Serve(service, DeterministicOptions()).ok()); });

  const int idler = testing_util::ConnectLoopback(server.port());
  ASSERT_GE(idler, 0);
  // RecvAll blocks until the server closes the connection — which it may
  // only do after the idle timeout fires and the cancelled frame flushes.
  const std::string frame = testing_util::RecvAll(idler);
  EXPECT_NE(frame.find("\"error\":\"cancelled\""), std::string::npos)
      << frame;
  EXPECT_NE(frame.find("idle timeout"), std::string::npos);
  ::close(idler);

  server.RequestDrain();
  serving.join();
}

}  // namespace
}  // namespace mbc

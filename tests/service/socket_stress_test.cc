// Copyright 2026 The balanced-clique Authors.
//
// Multi-client loopback stress: N concurrent socket clients drive one
// server with a mixed MBC/PF/gMBC load while a churn client loads and
// evicts its own graph in a loop and one client disconnects mid-pipeline.
// Every surviving client's responses must be byte-identical to a
// sequential single-worker reference, the churn must never produce a
// failure on another client's graphs (eviction never kills an in-flight
// query), and the per-connection counters must reconcile. This test is
// part of the TSan CI leg: the interesting property is that one poll
// thread, four workers and six client threads share a QueryService
// without a data race.
#include <gtest/gtest.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/graph/graph_io.h"
#include "src/service/jsonl.h"
#include "src/service/query_service.h"
#include "src/service/transport.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::ConnectLoopback;
using testing_util::RandomSignedGraph;
using testing_util::SendAll;

constexpr uint32_t kNumClients = 4;
constexpr uint32_t kQueriesPerClient = 60;
constexpr uint32_t kNumGraphs = 3;

SignedGraph MakeGraph(uint32_t g) {
  return RandomSignedGraph(26 + 4 * g, 140 + 25 * g, 0.42, 9000 + g);
}

/// Client c's deterministic batch over the preloaded graphs g0..g2.
std::string ClientBatch(uint32_t c) {
  std::ostringstream batch;
  uint64_t state = 100 + c;
  for (uint32_t i = 0; i < kQueriesPerClient; ++i) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    const uint32_t g = static_cast<uint32_t>((state >> 33) % kNumGraphs);
    const uint32_t pick = static_cast<uint32_t>((state >> 17) % 6);
    batch << "{\"id\":\"c" << c << "q" << i << "\",\"graph\":\"g" << g
          << "\"";
    if (pick < 3) {
      batch << ",\"kind\":\"mbc\",\"tau\":"
            << 1 + static_cast<uint32_t>((state >> 7) % 3);
    } else if (pick < 5) {
      batch << ",\"kind\":\"pf\"";
    } else {
      batch << ",\"kind\":\"gmbc\"";
    }
    batch << "}\n";
  }
  return batch.str();
}

JsonlOptions DeterministicOptions() {
  JsonlOptions jsonl;
  jsonl.deterministic = true;
  return jsonl;
}

/// The sequential ground truth: each client's batch through a fresh
/// single-worker service over the same graphs.
std::string SequentialReference(uint32_t c) {
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(options);
  for (uint32_t g = 0; g < kNumGraphs; ++g) {
    std::string name = "g";
    name += std::to_string(g);
    EXPECT_TRUE(service.store().Load(name, MakeGraph(g)).ok());
  }
  std::istringstream in(ClientBatch(c));
  std::ostringstream out;
  StdioTransport transport(in, out);
  EXPECT_TRUE(transport.Serve(service, DeterministicOptions()).ok());
  return out.str();
}

TEST(SocketStressTest, ConcurrentClientsChurnAndDisconnects) {
  SocketServer server(SocketServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 32;
  options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(options);
  for (uint32_t g = 0; g < kNumGraphs; ++g) {
    std::string name = "g";
    name += std::to_string(g);
    ASSERT_TRUE(service.store().Load(name, MakeGraph(g)).ok());
  }
  // The churn graph lives on disk so the load op can re-read it.
  const std::string churn_path = ::testing::TempDir() + "/stress_churn.txt";
  ASSERT_TRUE(WriteSignedEdgeList(MakeGraph(0), churn_path).ok());

  std::thread serving([&] {
    EXPECT_TRUE(server.Serve(service, DeterministicOptions()).ok());
  });

  // Query clients: full pipelined batch over RunJsonlSocketClient.
  std::vector<std::string> outputs(kNumClients);
  std::vector<Status> statuses(kNumClients, Status::OK());
  std::vector<std::thread> clients;
  clients.reserve(kNumClients);
  for (uint32_t c = 0; c < kNumClients; ++c) {
    clients.emplace_back([&, c] {
      std::istringstream in(ClientBatch(c));
      std::ostringstream out;
      statuses[c] =
          RunJsonlSocketClient("127.0.0.1", server.port(), in, out);
      outputs[c] = out.str();
    });
  }

  // Churn client: load/query/evict its own graph in a loop. Its queries
  // sit between its own load/evict barriers, so they must all succeed —
  // eviction never kills an in-flight query.
  std::string churn_output;
  Status churn_status = Status::OK();
  std::thread churner([&] {
    std::ostringstream batch;
    for (uint32_t round = 0; round < 12; ++round) {
      batch << "{\"op\":\"load\",\"name\":\"churn\",\"path\":\""
            << churn_path << "\"}\n";
      batch << "{\"id\":\"churn" << round
            << "\",\"graph\":\"churn\",\"kind\":\"mbc\",\"tau\":2}\n";
      batch << "{\"op\":\"evict\",\"name\":\"churn\"}\n";
    }
    std::istringstream in(batch.str());
    std::ostringstream out;
    churn_status = RunJsonlSocketClient("127.0.0.1", server.port(), in, out);
    churn_output = out.str();
  });

  // Saboteur: pipelines a burst of queries, then drops the connection
  // without reading a byte of the responses.
  std::thread saboteur([&] {
    const int fd = ConnectLoopback(server.port());
    if (fd < 0) return;
    std::string burst;
    for (uint32_t i = 0; i < 16; ++i) {
      burst += "{\"graph\":\"g1\",\"kind\":\"mbc\",\"tau\":2}\n";
    }
    burst += "{\"graph\":\"g2\",\"kind\":\"pf\"";  // cut mid-object
    SendAll(fd, burst);
    ::close(fd);
  });

  for (std::thread& client : clients) client.join();
  churner.join();
  saboteur.join();
  server.RequestDrain();
  serving.join();

  for (uint32_t c = 0; c < kNumClients; ++c) {
    ASSERT_TRUE(statuses[c].ok()) << statuses[c].ToString();
    EXPECT_EQ(outputs[c], SequentialReference(c)) << "client " << c;
  }
  ASSERT_TRUE(churn_status.ok()) << churn_status.ToString();
  // Every churn round: load ok, query ok (never not_found), evict ok.
  size_t churn_lines = 0;
  std::istringstream churn_in(churn_output);
  for (std::string line; std::getline(churn_in, line);) {
    EXPECT_EQ(line.find("\"ok\":false"), std::string::npos) << line;
    ++churn_lines;
  }
  EXPECT_EQ(churn_lines, 3u * 12u);

  // Counter reconciliation: every client thread accounted for, nobody
  // left active, and the workers' query counts sum to what actually ran.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.transport.connections_accepted, kNumClients + 2u);
  EXPECT_EQ(stats.transport.connections_active, 0);
  EXPECT_EQ(stats.transport.connections_rejected, 0u);
  EXPECT_GE(stats.transport.frames_in,
            static_cast<uint64_t>(kNumClients) * kQueriesPerClient);
  uint64_t worker_queries = 0;
  ASSERT_EQ(stats.workers.size(), 4u);
  for (const WorkerStats& worker : stats.workers) {
    worker_queries += worker.queries;
  }
  EXPECT_EQ(worker_queries, stats.queries_served);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Seeded chaos soak of the serving stack: worker stalls, injected
// allocation failures and slow-loris capped socket I/O, all armed at
// once, with several concurrent client connections. The invariants under
// chaos are absolute: every request line gets exactly one well-formed
// response frame, in request order per connection, and the server drains
// cleanly — no crash, no wedge, no unanswered frame.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/common/chaos.h"
#include "src/service/jsonl.h"
#include "src/service/query_service.h"
#include "src/service/transport.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

ServiceFaultOptions SoakChaos(uint64_t seed) {
  ServiceFaultOptions chaos;
  chaos.worker_stall_probability = 0.2;
  chaos.worker_stall_ms = 1.0;
  chaos.alloc_fail_probability = 0.15;
  chaos.slow_write_probability = 0.5;
  chaos.slow_write_bytes = 16;
  chaos.seed = seed;
  return chaos;
}

/// One client's request batch: a mix of solvable queries, cache-friendly
/// repeats, deadline-carrying queries and guaranteed errors (missing
/// graph), every one of which must be answered exactly once.
std::vector<std::string> BuildRequests(int client, int count) {
  std::vector<std::string> lines;
  for (int i = 0; i < count; ++i) {
    std::string id = "c";
    id += std::to_string(client);
    id += "-q";
    id += std::to_string(i);
    std::string line = "{\"id\":\"" + id + "\",";
    switch (i % 5) {
      case 0:
        line += "\"graph\":\"fig2\",\"tau\":2}";
        break;
      case 1:
        line += "\"graph\":\"rand\",\"tau\":1}";
        break;
      case 2:
        line += "\"graph\":\"fig2\",\"kind\":\"pf\"}";
        break;
      case 3:  // generous deadline: covers queue wait under stalls
        line += "\"graph\":\"fig2\",\"tau\":3,\"deadline_ms\":30000}";
        break;
      case 4:  // not loaded: a not_found error frame, exactly one
        line += "\"graph\":\"missing\"}";
        break;
    }
    lines.push_back(std::move(line));
  }
  return lines;
}

TEST(ChaosSoakTest, EveryRequestGetsExactlyOneWellFormedResponse) {
  const ServiceFaultOptions chaos = SoakChaos(0x50a6u);

  SocketServerOptions socket_options;
  socket_options.fault_injection = chaos;
  SocketServer server(socket_options);
  ASSERT_TRUE(server.Start().ok());

  ServiceOptions service_options;
  service_options.num_workers = 3;
  service_options.max_queue = 64;
  service_options.fault_injection = chaos;
  service_options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(service_options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  ASSERT_TRUE(
      service.store().Load("rand", RandomSignedGraph(24, 130, 0.45, 11)).ok());

  std::thread serving([&] {
    JsonlOptions jsonl;
    jsonl.deterministic = true;
    EXPECT_TRUE(server.Serve(service, jsonl).ok());
  });

  constexpr int kClients = 4;
  constexpr int kRequestsPerClient = 25;
  std::vector<std::thread> clients;
  std::vector<std::string> failures(kClients);
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::vector<std::string> requests =
          BuildRequests(c, kRequestsPerClient);
      std::string batch;
      for (const std::string& line : requests) batch += line + "\n";
      std::istringstream in(batch);
      std::ostringstream out;
      const Status status =
          RunJsonlSocketClient("127.0.0.1", server.port(), in, out);
      if (!status.ok()) {
        failures[c] = "client error: " + status.ToString();
        return;
      }
      std::istringstream response_stream(out.str());
      std::string line;
      size_t index = 0;
      while (std::getline(response_stream, line)) {
        if (index >= requests.size()) {
          failures[c] = "extra response frame: " + line;
          return;
        }
        // Successful frames carry arrays (clique vertex lists), which the
        // flat protocol parser deliberately rejects — validate shape by
        // structure instead: the echoed id leads the frame, the object is
        // closed, and the frame is either a success or exactly one error.
        std::string expected_id = "c";
        expected_id += std::to_string(c);
        expected_id += "-q";
        expected_id += std::to_string(index);
        if (line.rfind("{\"id\":\"" + expected_id + "\",", 0) != 0) {
          failures[c] = "out-of-order or mangled frame (wanted " +
                        expected_id + "): " + line;
          return;
        }
        if (line.empty() || line.back() != '}') {
          failures[c] = "truncated frame: " + line;
          return;
        }
        const bool ok = line.find("\"ok\":true") != std::string::npos;
        const bool error = line.find("\"error\":\"") != std::string::npos;
        if (ok == error) {
          failures[c] = "frame neither success nor error: " + line;
          return;
        }
        ++index;
      }
      if (index != requests.size()) {
        failures[c] = "only " + std::to_string(index) + " of " +
                      std::to_string(requests.size()) + " frames answered";
      }
    });
  }
  for (std::thread& t : clients) t.join();
  server.RequestDrain();
  serving.join();

  for (int c = 0; c < kClients; ++c) {
    EXPECT_TRUE(failures[c].empty()) << "client " << c << ": " << failures[c];
  }

  // The transport's books balance after the drain: every consumed frame
  // was answered, no connection is left open.
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.transport.connections_active, 0);
  EXPECT_EQ(stats.transport.frames_in,
            static_cast<uint64_t>(kClients) * kRequestsPerClient);
  EXPECT_EQ(stats.transport.frames_in, stats.transport.frames_out);
}

TEST(ChaosSoakTest, AllocFailuresSurfaceAsResourceExhaustedNotCrashes) {
  ServiceFaultOptions chaos;
  chaos.alloc_fail_probability = 1.0;  // every query fails to "allocate"
  chaos.seed = 7;

  ServiceOptions options;
  options.num_workers = 2;
  options.fault_injection = chaos;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  QueryRequest request;
  request.id = "a";
  request.graph = "fig2";
  request.tau = 2;
  const QueryResponse response = service.Query(request);
  EXPECT_TRUE(response.status.IsResourceExhausted())
      << response.status.ToString();
  // Injected failures never populate the cache.
  EXPECT_EQ(service.Stats().cache.insertions, 0u);
}

TEST(ChaosSoakTest, StdioPathSurvivesWorkerChaosToo) {
  ServiceFaultOptions chaos;
  chaos.worker_stall_probability = 0.5;
  chaos.worker_stall_ms = 1.0;
  chaos.alloc_fail_probability = 0.3;
  chaos.seed = 99;

  ServiceOptions options;
  options.num_workers = 2;
  options.fault_injection = chaos;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  std::string batch;
  for (int i = 0; i < 20; ++i) {
    batch += "{\"id\":\"q" + std::to_string(i) + "\",\"graph\":\"fig2\"}\n";
  }
  std::istringstream in(batch);
  std::ostringstream out;
  JsonlOptions jsonl;
  jsonl.deterministic = true;
  ASSERT_TRUE(RunJsonlStream(service, in, out, jsonl).ok());

  std::istringstream response_stream(out.str());
  std::string line;
  int frames = 0;
  while (std::getline(response_stream, line)) {
    const std::string expected_prefix =
        "{\"id\":\"q" + std::to_string(frames) + "\",";
    EXPECT_EQ(line.rfind(expected_prefix, 0), 0u) << line;
    ASSERT_FALSE(line.empty());
    EXPECT_EQ(line.back(), '}') << line;
    ++frames;
  }
  EXPECT_EQ(frames, 20);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// GraphStore streaming tests: Mutate versioning, delta-state lifecycle
// across Evict/reload, incremental core accounting, and Compact.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/fingerprint.h"
#include "src/common/status.h"
#include "src/service/graph_store.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;

SignedGraph PathGraph() {
  return FromText(R"(
    0 1 1
    1 2 1
    2 3 -1
  )");
}

MutationBatch AddBatch(VertexId u, VertexId v,
                       Sign sign = Sign::kPositive) {
  MutationBatch batch;
  batch.add.push_back({u, v, sign});
  return batch;
}

MutationBatch RemoveBatch(VertexId u, VertexId v) {
  MutationBatch batch;
  batch.remove.emplace_back(u, v);
  return batch;
}

TEST(GraphStoreMutationTest, MutateMintsNewVersionedHead) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", PathGraph()).ok());
  const uint64_t base_fp = store.Find("g").value()->fingerprint();

  const auto outcome = store.Mutate("g", AddBatch(0, 2), DeltaBudget{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().old_fingerprint, base_fp);
  EXPECT_EQ(outcome.value().stats.version, 1u);
  EXPECT_NE(outcome.value().stats.fingerprint, base_fp);

  const auto head = store.Find("g");
  ASSERT_TRUE(head.ok());
  EXPECT_EQ(head.value()->version(), 1u);
  EXPECT_EQ(head.value()->fingerprint(), outcome.value().stats.fingerprint);
  EXPECT_EQ(head.value()->graph().NumEdges(), 4u);

  // Stacking: the next batch builds on the new head.
  ASSERT_TRUE(store.Mutate("g", RemoveBatch(2, 3), DeltaBudget{}).ok());
  EXPECT_EQ(store.Find("g").value()->version(), 2u);
  EXPECT_EQ(store.Find("g").value()->graph().NumEdges(), 3u);
}

TEST(GraphStoreMutationTest, AllNoopBatchLeavesHeadInPlace) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", PathGraph()).ok());
  const auto before = store.Find("g").value();

  // Re-adding an existing edge with its existing sign is a noop.
  const auto outcome = store.Mutate("g", AddBatch(0, 1), DeltaBudget{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().stats.noops, 1u);
  EXPECT_EQ(outcome.value().stats.version, 0u);

  const auto after = store.Find("g").value();
  EXPECT_EQ(after.get(), before.get());  // same snapshot object
}

TEST(GraphStoreMutationTest, MutateUnknownNameIsNotFound) {
  GraphStore store;
  EXPECT_EQ(store.Mutate("nope", AddBatch(0, 1), DeltaBudget{})
                .status()
                .code(),
            StatusCode::kNotFound);
  EXPECT_EQ(store.Compact("nope").status().code(), StatusCode::kNotFound);
}

TEST(GraphStoreMutationTest, EvictClearsDeltaStateForReload) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", PathGraph()).ok());
  ASSERT_TRUE(store.Mutate("g", AddBatch(0, 2), DeltaBudget{}).ok());
  ASSERT_TRUE(store.Evict("g").ok());

  // A reload under the same name starts a fresh lineage: version 0 and a
  // first mutation that sees no stale log or core tracker.
  ASSERT_TRUE(store.Load("g", PathGraph()).ok());
  EXPECT_EQ(store.Find("g").value()->version(), 0u);
  const auto outcome = store.Mutate("g", AddBatch(1, 3), DeltaBudget{});
  ASSERT_TRUE(outcome.ok());
  EXPECT_EQ(outcome.value().stats.version, 1u);
  EXPECT_EQ(store.Find("g").value()->graph().NumEdges(), 4u);
}

TEST(GraphStoreMutationTest, IncrementalCoreCountersTrackSkeletonEdits) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", PathGraph()).ok());

  // Closing the 0-1-2 triangle lifts three vertices to core 2.
  const auto grow = store.Mutate("g", AddBatch(0, 2), DeltaBudget{});
  ASSERT_TRUE(grow.ok());
  EXPECT_EQ(grow.value().core_affected, 3u);
  EXPECT_GE(grow.value().core_visited, grow.value().core_affected);

  // A sign flip does not change the skeleton, so no core work happens.
  const auto flip = store.Mutate("g", AddBatch(0, 1, Sign::kNegative),
                                 DeltaBudget{});
  ASSERT_TRUE(flip.ok());
  EXPECT_EQ(flip.value().stats.flipped, 1u);
  EXPECT_EQ(flip.value().core_affected, 0u);
  EXPECT_EQ(flip.value().core_visited, 0u);
}

TEST(GraphStoreMutationTest, CompactRewritesToContentFingerprint) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", PathGraph()).ok());
  // A permissive budget keeps the drift un-compacted (the default ratio
  // would auto-compact on a 3-edge base), so Compact has work to do.
  DeltaBudget budget;
  budget.compact_ratio = 100.0;
  ASSERT_TRUE(store.Mutate("g", AddBatch(0, 3, Sign::kNegative), budget)
                  .ok());

  const auto first = store.Compact("g");
  ASSERT_TRUE(first.ok());
  EXPECT_TRUE(first.value().changed);
  const auto head = store.Find("g").value();
  EXPECT_EQ(first.value().fingerprint, FingerprintSignedGraph(head->graph()));
  EXPECT_EQ(head->fingerprint(), first.value().fingerprint);
  EXPECT_EQ(head->version(), first.value().version);

  // Already content-addressed: a second compaction is a no-op.
  const auto second = store.Compact("g");
  ASSERT_TRUE(second.ok());
  EXPECT_FALSE(second.value().changed);
  EXPECT_EQ(second.value().fingerprint, first.value().fingerprint);
}

TEST(GraphStoreMutationTest, ConcurrentMutationsOfOneNameSerialize) {
  GraphStore store;
  ASSERT_TRUE(store.Load("g", testing_util::RandomSignedGraph(32, 60, 0.3,
                                                              13))
                  .ok());
  // Two threads add disjoint fresh edges; both batches must land (the
  // per-name mutation lock serializes them, the loser re-stacks).
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&store, &failures, t] {
      for (int i = 0; i < 8; ++i) {
        const VertexId u = static_cast<VertexId>(t * 16 + i);
        if (!store.Mutate("g", RemoveBatch(u, u + 1), DeltaBudget{}).ok()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(failures.load(), 0);
  ASSERT_TRUE(store.Find("g").ok());
}

}  // namespace
}  // namespace mbc

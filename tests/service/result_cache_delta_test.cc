// Copyright 2026 The balanced-clique Authors.
//
// Tests for fingerprint-delta cache invalidation: witness-disjoint exact
// MBC entries survive a mutation batch (re-keyed to the head fingerprint),
// everything else is dropped, and compaction rekeys verbatim.
#include <optional>
#include <vector>

#include "gtest/gtest.h"
#include "src/service/result_cache.h"

namespace mbc {
namespace {

constexpr uint64_t kOldFp = 0x1111111111111111ull;
constexpr uint64_t kNewFp = 0x2222222222222222ull;

CacheKey MbcKey(uint64_t fingerprint, uint32_t tau = 1) {
  CacheKey key;
  key.graph_fingerprint = fingerprint;
  key.kind = QueryKind::kMbc;
  key.tau = tau;
  key.algo = "star";
  return key;
}

QueryResult MbcResult(std::vector<VertexId> left,
                      std::vector<VertexId> right) {
  QueryResult result;
  result.clique.left = std::move(left);
  result.clique.right = std::move(right);
  return result;
}

CacheDelta Delta(std::vector<VertexId> dirty, uint32_t add_clique_bound) {
  CacheDelta delta;
  delta.old_fingerprint = kOldFp;
  delta.new_fingerprint = kNewFp;
  delta.dirty = std::move(dirty);
  delta.add_clique_bound = add_clique_bound;
  return delta;
}

TEST(ResultCacheDeltaTest, WitnessDisjointEntrySurvivesAndRekeys) {
  ResultCache cache(1 << 20);
  cache.Insert(MbcKey(kOldFp), MbcResult({1, 2, 3}, {9}));

  const CacheDeltaOutcome outcome = cache.ApplyDelta(Delta({20, 21}, 3));
  EXPECT_EQ(outcome.invalidated, 0u);
  EXPECT_EQ(outcome.rekeyed, 1u);

  EXPECT_FALSE(cache.Lookup(MbcKey(kOldFp)).has_value());
  std::optional<QueryResult> hit = cache.Lookup(MbcKey(kNewFp));
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->clique.left, (std::vector<VertexId>{1, 2, 3}));
  EXPECT_EQ(hit->clique.right, (std::vector<VertexId>{9}));
}

TEST(ResultCacheDeltaTest, DirtyWitnessIsInvalidated) {
  ResultCache cache(1 << 20);
  cache.Insert(MbcKey(kOldFp), MbcResult({1, 2, 3}, {9}));

  // Dirty vertex 9 sits in the right side of the witness.
  const CacheDeltaOutcome outcome = cache.ApplyDelta(Delta({9}, 0));
  EXPECT_EQ(outcome.invalidated, 1u);
  EXPECT_EQ(outcome.rekeyed, 0u);
  EXPECT_FALSE(cache.Lookup(MbcKey(kNewFp)).has_value());
}

TEST(ResultCacheDeltaTest, AddCliqueBoundAboveCachedSizeInvalidates) {
  ResultCache cache(1 << 20);
  cache.Insert(MbcKey(kOldFp), MbcResult({1, 2}, {9}));  // size 3

  // The batch could create a clique of size 4 somewhere outside the
  // witness, so a size-3 optimum is no longer provably optimal.
  EXPECT_EQ(cache.ApplyDelta(Delta({20, 21}, 4)).invalidated, 1u);

  // A bound at or below the cached size keeps the entry.
  cache.Insert(MbcKey(kNewFp), MbcResult({1, 2}, {9}));
  CacheDelta delta = Delta({20, 21}, 3);
  delta.old_fingerprint = kNewFp;
  delta.new_fingerprint = 0x3333333333333333ull;
  EXPECT_EQ(cache.ApplyDelta(delta).rekeyed, 1u);
}

TEST(ResultCacheDeltaTest, NonMbcAndDegradedEntriesAlwaysInvalidate) {
  ResultCache cache(1 << 20);
  CacheKey pf_key;
  pf_key.graph_fingerprint = kOldFp;
  pf_key.kind = QueryKind::kPf;
  pf_key.algo = "star";
  QueryResult pf;
  pf.beta = 5;
  cache.Insert(pf_key, pf);

  CacheKey degraded = MbcKey(kOldFp);
  degraded.exactness = CacheExactness::kDegraded;
  degraded.algo = "greedy";
  cache.Insert(degraded, MbcResult({1}, {2}));

  // Untouched witnesses, zero bound — still dropped: PF/gMBC/degraded
  // answers depend on global structure the witness does not capture.
  const CacheDeltaOutcome outcome = cache.ApplyDelta(Delta({50}, 0));
  EXPECT_EQ(outcome.invalidated, 2u);
  EXPECT_EQ(outcome.rekeyed, 0u);
}

TEST(ResultCacheDeltaTest, CompactionRekeysEverythingVerbatim) {
  ResultCache cache(1 << 20);
  CacheKey pf_key;
  pf_key.graph_fingerprint = kOldFp;
  pf_key.kind = QueryKind::kPf;
  pf_key.algo = "star";
  QueryResult pf;
  pf.beta = 7;
  cache.Insert(pf_key, pf);
  cache.Insert(MbcKey(kOldFp), MbcResult({1, 2}, {9}));

  CacheDelta rekey;
  rekey.old_fingerprint = kOldFp;
  rekey.new_fingerprint = kNewFp;
  rekey.content_changed = false;  // compaction: same bytes, new address
  const CacheDeltaOutcome outcome = cache.ApplyDelta(rekey);
  EXPECT_EQ(outcome.invalidated, 0u);
  EXPECT_EQ(outcome.rekeyed, 2u);

  pf_key.graph_fingerprint = kNewFp;
  std::optional<QueryResult> hit = cache.Lookup(pf_key);
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(hit->beta, 7u);
}

TEST(ResultCacheDeltaTest, OtherFingerprintsAreUntouched) {
  ResultCache cache(1 << 20);
  const uint64_t other = 0x4444444444444444ull;
  cache.Insert(MbcKey(kOldFp), MbcResult({1}, {9}));
  cache.Insert(MbcKey(other), MbcResult({2}, {8}));

  cache.ApplyDelta(Delta({1}, 0));
  EXPECT_TRUE(cache.Lookup(MbcKey(other)).has_value());
  EXPECT_FALSE(cache.Lookup(MbcKey(kOldFp)).has_value());
}

TEST(ResultCacheDeltaTest, RekeyCollisionKeepsRacingEntry) {
  ResultCache cache(1 << 20);
  cache.Insert(MbcKey(kOldFp), MbcResult({1, 2, 3}, {9}));
  // A "racing query" already cached the key at the head fingerprint.
  cache.Insert(MbcKey(kNewFp), MbcResult({1, 2, 3}, {9}));

  const CacheDeltaOutcome outcome = cache.ApplyDelta(Delta({20}, 0));
  EXPECT_EQ(outcome.rekeyed, 1u);
  EXPECT_TRUE(cache.Lookup(MbcKey(kNewFp)).has_value());
}

TEST(ResultCacheDeltaTest, StatsExposeDeltaCounters) {
  ResultCache cache(1 << 20);
  cache.Insert(MbcKey(kOldFp), MbcResult({1, 2, 3}, {9}));
  cache.Insert(MbcKey(kOldFp, 2), MbcResult({1}, {9}));  // size 2 < bound

  cache.ApplyDelta(Delta({20}, 3));
  const CacheStats stats = cache.Stats();
  EXPECT_EQ(stats.rekeyed_by_delta, 1u);    // tau=1 entry, size 4... survives
  EXPECT_EQ(stats.invalidated_by_delta, 1u);  // tau=2 entry under the bound
}

TEST(ResultCacheDeltaTest, DisabledCacheIsNoop) {
  ResultCache cache(0);
  EXPECT_EQ(cache.ApplyDelta(Delta({1}, 0)).invalidated, 0u);
}

}  // namespace
}  // namespace mbc

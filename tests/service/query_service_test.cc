// Copyright 2026 The balanced-clique Authors.
#include "src/service/query_service.h"

#include <gtest/gtest.h>

#include <future>
#include <string>
#include <utility>
#include <vector>

#include "src/core/mbc_star.h"
#include "src/gmbc/gmbc.h"
#include "src/pf/pf_star.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

QueryRequest MbcRequest(const std::string& graph, uint32_t tau,
                        const std::string& id = "q") {
  QueryRequest request;
  request.id = id;
  request.graph = graph;
  request.kind = QueryKind::kMbc;
  request.tau = tau;
  return request;
}

TEST(QueryServiceTest, AnswersMatchDirectSolverCalls) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  // Figure 2 ground truth: |C*| = 6 at tau=2, beta = 3.
  QueryResponse mbc = service.Query(MbcRequest("fig2", 2));
  ASSERT_TRUE(mbc.status.ok()) << mbc.status.ToString();
  EXPECT_EQ(mbc.result.clique.size(), 6u);

  QueryRequest pf;
  pf.graph = "fig2";
  pf.kind = QueryKind::kPf;
  QueryResponse pf_response = service.Query(pf);
  ASSERT_TRUE(pf_response.status.ok());
  EXPECT_EQ(pf_response.result.beta, 3u);

  QueryRequest gmbc;
  gmbc.graph = "fig2";
  gmbc.kind = QueryKind::kGmbc;
  QueryResponse gmbc_response = service.Query(gmbc);
  ASSERT_TRUE(gmbc_response.status.ok());
  const GeneralizedMbcResult direct = GeneralizedMbcStar(Figure2Graph());
  EXPECT_EQ(gmbc_response.result.beta, direct.beta);
  ASSERT_EQ(gmbc_response.result.gmbc_sizes.size(), direct.cliques.size());
  for (size_t tau = 0; tau < direct.cliques.size(); ++tau) {
    EXPECT_EQ(gmbc_response.result.gmbc_sizes[tau],
              direct.cliques[tau].size());
  }
}

TEST(QueryServiceTest, AllMbcAlgosAgree) {
  QueryService service;
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(24, 130, 0.45, 11)).ok());
  std::vector<size_t> sizes;
  for (const char* algo : {"star", "baseline", "adv"}) {
    QueryRequest request = MbcRequest("g", 1);
    request.algo = algo;
    QueryResponse response = service.Query(std::move(request));
    ASSERT_TRUE(response.status.ok()) << algo;
    sizes.push_back(response.result.clique.size());
  }
  EXPECT_EQ(sizes[0], sizes[1]);
  EXPECT_EQ(sizes[0], sizes[2]);
}

TEST(QueryServiceTest, UnknownGraphIsNotFound) {
  QueryService service;
  QueryResponse response = service.Query(MbcRequest("missing", 1));
  EXPECT_EQ(response.status.code(), StatusCode::kNotFound);
  EXPECT_EQ(response.id, "q");
}

TEST(QueryServiceTest, UnknownAlgoIsInvalidArgument) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  QueryRequest request = MbcRequest("fig2", 2);
  request.algo = "quantum";
  EXPECT_EQ(service.Query(std::move(request)).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceTest, RepeatQueryHitsCache) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  QueryResponse first = service.Query(MbcRequest("fig2", 2, "a"));
  QueryResponse second = service.Query(MbcRequest("fig2", 2, "b"));
  ASSERT_TRUE(first.status.ok());
  ASSERT_TRUE(second.status.ok());
  EXPECT_FALSE(first.cached);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(first.result.clique.left, second.result.clique.left);
  EXPECT_EQ(first.result.clique.right, second.result.clique.right);
  EXPECT_EQ(service.Stats().cache.hits, 1u);
}

TEST(QueryServiceTest, NoCacheBypassesLookupAndInsert) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  QueryRequest request = MbcRequest("fig2", 2);
  request.no_cache = true;
  EXPECT_FALSE(service.Query(request).cached);
  EXPECT_FALSE(service.Query(request).cached);
  EXPECT_EQ(service.Stats().cache.insertions, 0u);
  EXPECT_EQ(service.Stats().cache.hits, 0u);
}

TEST(QueryServiceTest, CacheIsContentAddressedAcrossReload) {
  QueryService service;
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(20, 80, 0.5, 4)).ok());
  ASSERT_TRUE(service.Query(MbcRequest("g", 1)).status.ok());
  ASSERT_TRUE(service.store().Evict("g").ok());
  // Identical bytes under the same name: the entry must survive.
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(20, 80, 0.5, 4)).ok());
  EXPECT_TRUE(service.Query(MbcRequest("g", 1)).cached);
  ASSERT_TRUE(service.store().Evict("g").ok());
  // Different bytes under the same name: the entry must NOT be served.
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(20, 80, 0.5, 5)).ok());
  EXPECT_FALSE(service.Query(MbcRequest("g", 1)).cached);
}

TEST(QueryServiceTest, PerQueryTauKeysSeparateCacheEntries) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  ASSERT_TRUE(service.Query(MbcRequest("fig2", 1)).status.ok());
  QueryResponse other_tau = service.Query(MbcRequest("fig2", 2));
  EXPECT_FALSE(other_tau.cached);
  // PF ignores tau, so two PF queries with different tau share one entry.
  QueryRequest pf;
  pf.graph = "fig2";
  pf.kind = QueryKind::kPf;
  pf.tau = 1;
  ASSERT_TRUE(service.Query(pf).status.ok());
  pf.tau = 7;
  EXPECT_TRUE(service.Query(pf).cached);
}

TEST(QueryServiceTest, ExpiredDeadlineIsReportedAndNotCached) {
  QueryService service;
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(64, 600, 0.4, 2)).ok());
  QueryRequest request = MbcRequest("g", 1);
  request.time_limit_seconds = 1e-9;  // expires before the first checkpoint
  QueryResponse response = service.Query(request);
  EXPECT_FALSE(response.status.ok());
  EXPECT_EQ(service.Stats().cache.insertions, 0u);
  // The same query without the bad budget must run fresh, not hit a
  // poisoned entry.
  QueryResponse good = service.Query(MbcRequest("g", 1));
  EXPECT_TRUE(good.status.ok());
  EXPECT_FALSE(good.cached);
}

TEST(QueryServiceTest, BackpressureRejectsWhenQueueIsFull) {
  ServiceOptions options;
  options.num_workers = 2;
  options.max_queue = 4;
  options.start_workers = false;  // queue fills deterministically
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  std::vector<std::future<QueryResponse>> accepted;
  for (size_t i = 0; i < options.max_queue; ++i) {
    Result<std::future<QueryResponse>> submitted =
        service.Submit(MbcRequest("fig2", 2, "ok" + std::to_string(i)));
    ASSERT_TRUE(submitted.ok()) << i;
    accepted.push_back(std::move(submitted).value());
  }
  Result<std::future<QueryResponse>> overflow =
      service.Submit(MbcRequest("fig2", 2, "overflow"));
  ASSERT_FALSE(overflow.ok());
  EXPECT_EQ(overflow.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(service.Stats().queries_rejected, 1u);
  EXPECT_EQ(service.Stats().queue_depth, options.max_queue);

  service.StartWorkers();
  for (auto& future : accepted) {
    EXPECT_TRUE(future.get().status.ok());
  }
  EXPECT_EQ(service.Stats().queries_served, options.max_queue);
}

TEST(QueryServiceTest, ShutdownCancelsQueuedRequests) {
  ServiceOptions options;
  options.start_workers = false;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  Result<std::future<QueryResponse>> submitted =
      service.Submit(MbcRequest("fig2", 2, "doomed"));
  ASSERT_TRUE(submitted.ok());
  service.Shutdown();
  QueryResponse response = submitted.value().get();
  EXPECT_EQ(response.status.code(), StatusCode::kCancelled);
  EXPECT_EQ(response.id, "doomed");
  // Submitting after shutdown fails immediately.
  EXPECT_EQ(service.Submit(MbcRequest("fig2", 2)).status().code(),
            StatusCode::kCancelled);
  EXPECT_EQ(service.Query(MbcRequest("fig2", 2)).status.code(),
            StatusCode::kCancelled);
}

TEST(QueryServiceTest, StatsJsonContainsTheCounters) {
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  ASSERT_TRUE(service.Query(MbcRequest("fig2", 2)).status.ok());
  ASSERT_TRUE(service.Query(MbcRequest("fig2", 2)).status.ok());
  const std::string json = service.StatsJson();
  EXPECT_NE(json.find("\"queries_served\":2"), std::string::npos) << json;
  EXPECT_NE(json.find("\"graphs_loaded\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hits\":1"), std::string::npos) << json;
  EXPECT_NE(json.find("\"hit_rate\":0.5"), std::string::npos) << json;
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, 2u);
  EXPECT_GT(stats.latency_p50_seconds, 0.0);
  EXPECT_GE(stats.latency_p95_seconds, stats.latency_p50_seconds);
}

TEST(QueryServiceTest, StatsJsonContainsTransportAndWorkerSections) {
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  ASSERT_TRUE(service.Query(MbcRequest("fig2", 2)).status.ok());
  const std::string json = service.StatsJson();
  EXPECT_NE(json.find("\"transport\":{\"connections_accepted\":"),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"frames_in\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"workers\":[{"), std::string::npos) << json;
  EXPECT_NE(json.find("\"mdc_arena_hwm_bytes\":"), std::string::npos) << json;
}

// The per-worker counters and arena high-water marks only ever go up,
// the marks reflect real arena bytes once the solver has run, and the
// worker query counts sum to queries_served.
TEST(QueryServiceTest, WorkerStatsAreMonotone) {
  ServiceOptions options;
  options.num_workers = 2;
  QueryService service(options);
  // Dense enough that the MDC search actually recurses (a sparse graph
  // can be fully solved by reductions without touching the arena).
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(48, 700, 0.3, 77)).ok());

  std::vector<WorkerStats> previous(options.num_workers);
  for (uint32_t round = 0; round < 4; ++round) {
    QueryRequest request = MbcRequest("g", 1 + round % 3);
    request.no_cache = true;  // every round must reach a worker's solver
    ASSERT_TRUE(service.Query(request).status.ok());

    const ServiceStats stats = service.Stats();
    ASSERT_EQ(stats.workers.size(), options.num_workers);
    uint64_t total_queries = 0;
    uint64_t total_hwm = 0;
    for (size_t w = 0; w < stats.workers.size(); ++w) {
      EXPECT_GE(stats.workers[w].queries, previous[w].queries)
          << "worker " << w << " round " << round;
      EXPECT_GE(stats.workers[w].mdc_arena_hwm_bytes,
                previous[w].mdc_arena_hwm_bytes)
          << "worker " << w << " round " << round;
      EXPECT_GE(stats.workers[w].dcc_arena_hwm_bytes,
                previous[w].dcc_arena_hwm_bytes)
          << "worker " << w << " round " << round;
      total_queries += stats.workers[w].queries;
      total_hwm += stats.workers[w].mdc_arena_hwm_bytes;
      previous[w] = stats.workers[w];
    }
    EXPECT_EQ(total_queries, stats.queries_served);
    EXPECT_GT(total_hwm, 0u) << "an MDC query ran, so some worker's "
                                "arena must have a footprint";
  }
}

TEST(QueryServiceTest, TrySubmitFullQueueDoesNotCountAsRejected) {
  ServiceOptions options;
  options.num_workers = 1;
  options.max_queue = 1;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  // Saturate: one request on the worker, one in the queue, then TrySubmit
  // until it reports exhaustion.
  std::vector<std::future<QueryResponse>> inflight;
  Status full = Status::OK();
  for (uint32_t i = 0; i < 64; ++i) {
    std::string id = "t";
    id += std::to_string(i);
    QueryRequest request = MbcRequest("fig2", 1 + i % 3, id);
    request.no_cache = true;
    Result<std::future<QueryResponse>> submitted =
        service.TrySubmit(std::move(request));
    if (!submitted.ok()) {
      full = submitted.status();
      break;
    }
    inflight.push_back(std::move(submitted).value());
  }
  for (std::future<QueryResponse>& future : inflight) future.wait();
  if (!full.ok()) {
    EXPECT_EQ(full.code(), StatusCode::kResourceExhausted);
  }
  // Backpressure retries are not shed requests: the rejected counter only
  // moves for Submit(), never TrySubmit().
  EXPECT_EQ(service.Stats().queries_rejected, 0u);
}

// ---------------------------------------------------------------------
// Intra-query parallelism.

TEST(QueryServiceParallelTest, ParallelAnswerMatchesSequentialStar) {
  ServiceOptions options;
  options.intra_query_threads = 3;
  QueryService service(options);
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(30, 220, 0.45, 19)).ok());

  QueryRequest sequential = MbcRequest("g", 2, "seq");
  sequential.no_cache = true;
  const QueryResponse reference = service.Query(sequential);
  ASSERT_TRUE(reference.status.ok()) << reference.status.ToString();

  QueryRequest parallel = MbcRequest("g", 2, "par");
  parallel.no_cache = true;
  parallel.parallel_threads = 4;
  const QueryResponse answer = service.Query(parallel);
  ASSERT_TRUE(answer.status.ok()) << answer.status.ToString();
  EXPECT_EQ(answer.result.clique.size(), reference.result.clique.size());
}

TEST(QueryServiceParallelTest, ThreadCountsShareOneCacheEntry) {
  // The parallel engine is deterministic across thread counts, so every
  // parallel request caches under one "parallel" label: asking again with
  // a different parallel_threads must hit.
  ServiceOptions options;
  options.intra_query_threads = 4;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  QueryRequest first = MbcRequest("fig2", 2, "p2");
  first.parallel_threads = 2;
  ASSERT_TRUE(service.Query(first).status.ok());

  QueryRequest second = MbcRequest("fig2", 2, "p8");
  second.parallel_threads = 8;
  const QueryResponse hit = service.Query(second);
  ASSERT_TRUE(hit.status.ok());
  EXPECT_TRUE(hit.cached);

  // A plain sequential star request is a different answer contract (its
  // witness is not canonical-lex-min) and must NOT see that entry.
  const QueryResponse sequential = service.Query(MbcRequest("fig2", 2, "s"));
  ASSERT_TRUE(sequential.status.ok());
  EXPECT_FALSE(sequential.cached);
}

TEST(QueryServiceParallelTest, InvalidCompositionsAreRejected) {
  ServiceOptions options;
  options.intra_query_threads = 2;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  QueryRequest pf;
  pf.graph = "fig2";
  pf.kind = QueryKind::kPf;
  pf.parallel_threads = 2;
  EXPECT_EQ(service.Query(pf).status.code(), StatusCode::kInvalidArgument);

  QueryRequest baseline = MbcRequest("fig2", 2);
  baseline.algo = "baseline";
  baseline.parallel_threads = 2;
  EXPECT_EQ(service.Query(baseline).status.code(),
            StatusCode::kInvalidArgument);

  // "parallel" is the engine's internal cache label, never an addressable
  // algo: spelling it directly must fail even without parallel_threads.
  QueryRequest direct = MbcRequest("fig2", 2);
  direct.algo = "parallel";
  EXPECT_EQ(service.Query(direct).status.code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryServiceParallelTest, ZeroBudgetClampsToOneThreadSameAnswer) {
  // intra_query_threads defaults to 0: parallel requests still succeed on
  // one thread and produce the identical answer.
  QueryService service;
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(26, 160, 0.4, 31)).ok());

  QueryRequest request = MbcRequest("g", 1);
  request.no_cache = true;
  request.parallel_threads = 8;
  const QueryResponse clamped = service.Query(request);
  ASSERT_TRUE(clamped.status.ok()) << clamped.status.ToString();

  QueryRequest sequential = MbcRequest("g", 1);
  sequential.no_cache = true;
  const QueryResponse reference = service.Query(sequential);
  ASSERT_TRUE(reference.status.ok());
  EXPECT_EQ(clamped.result.clique.size(), reference.result.clique.size());
}

TEST(QueryServiceParallelTest, SchedulerCountersSurfaceInStats) {
  ServiceOptions options;
  options.num_workers = 1;
  options.intra_query_threads = 3;
  QueryService service(options);
  ASSERT_TRUE(
      service.store().Load("g", RandomSignedGraph(40, 500, 0.35, 7)).ok());

  QueryRequest request = MbcRequest("g", 1);
  request.no_cache = true;
  request.parallel_threads = 4;
  ASSERT_TRUE(service.Query(request).status.ok());

  const ServiceStats stats = service.Stats();
  ASSERT_EQ(stats.workers.size(), 1u);
  // The counters are cumulative sums over parallel runs; on a graph this
  // small splits may be zero, but the fields must exist and export.
  const std::string json = service.StatsJson();
  EXPECT_NE(json.find("\"steals\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"splits\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"incumbent_updates\":"), std::string::npos) << json;
  EXPECT_NE(json.find("\"admission_skipped\":"), std::string::npos) << json;
}

TEST(QueryServiceParallelTest, GmbcWitnessesAreAlwaysComputedOnceCached) {
  // One cache entry serves both the size-only and the witness-bearing
  // shape of the same gmbc query: the witnesses ride in the cached
  // payload and serialization (not execution) gates them.
  QueryService service;
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());

  QueryRequest sizes_only;
  sizes_only.graph = "fig2";
  sizes_only.kind = QueryKind::kGmbc;
  const QueryResponse first = service.Query(sizes_only);
  ASSERT_TRUE(first.status.ok());
  EXPECT_FALSE(first.result.gmbc_cliques.empty());

  QueryRequest with_witnesses = sizes_only;
  with_witnesses.witnesses = true;
  const QueryResponse second = service.Query(with_witnesses);
  ASSERT_TRUE(second.status.ok());
  EXPECT_TRUE(second.cached);
  ASSERT_EQ(second.result.gmbc_cliques.size(),
            second.result.gmbc_sizes.size());
  for (size_t tau = 0; tau < second.result.gmbc_sizes.size(); ++tau) {
    EXPECT_EQ(second.result.gmbc_cliques[tau].size(),
              second.result.gmbc_sizes[tau]);
  }
}

}  // namespace
}  // namespace mbc

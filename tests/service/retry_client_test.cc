// Copyright 2026 The balanced-clique Authors.
//
// RunRetryingJsonlClient against a scriptable fake server (deterministic
// shed-then-serve schedules, mid-stream connection drops) and against the
// real SocketServer end to end.
#include "src/service/client.h"

#include <gtest/gtest.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <atomic>
#include <cstring>
#include <functional>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "src/service/jsonl.h"
#include "src/service/query_service.h"
#include "src/service/transport.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;

/// What the fake server does with one request line.
struct FakeAction {
  enum Kind {
    kOk,           // respond {"id":...,"ok":true}
    kExhausted,    // respond resource_exhausted
    kDropConnection  // close the connection without responding
  };
  Kind kind = kOk;
};

/// A single-threaded scriptable JSONL server: accepts one connection at a
/// time, parses request ids, and answers according to a per-id schedule
/// of actions (consumed one per attempt; the last action repeats).
class FakeServer {
 public:
  using Schedule = std::vector<FakeAction::Kind>;

  FakeServer() {
    listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
    struct sockaddr_in addr = {};
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = 0;
    EXPECT_EQ(::bind(listen_fd_, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr)),
              0)
        << std::strerror(errno);
    EXPECT_EQ(::listen(listen_fd_, 8), 0);
    socklen_t len = sizeof(addr);
    EXPECT_EQ(::getsockname(listen_fd_,
                            reinterpret_cast<struct sockaddr*>(&addr), &len),
              0);
    port_ = ntohs(addr.sin_port);
    thread_ = std::thread([this] { Serve(); });
  }

  ~FakeServer() {
    stop_.store(true);
    thread_.join();
    ::close(listen_fd_);
  }

  uint16_t port() const { return port_; }

  void SetSchedule(const std::string& id, Schedule schedule) {
    std::lock_guard<std::mutex> lock(mutex_);
    schedules_[id] = std::move(schedule);
  }

  size_t attempts_seen(const std::string& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    return attempts_[id];
  }

 private:
  FakeAction::Kind NextAction(const std::string& id) {
    std::lock_guard<std::mutex> lock(mutex_);
    const size_t attempt = attempts_[id]++;
    auto it = schedules_.find(id);
    if (it == schedules_.end() || it->second.empty()) return FakeAction::kOk;
    const Schedule& schedule = it->second;
    return schedule[attempt < schedule.size() ? attempt
                                              : schedule.size() - 1];
  }

  void Serve() {
    while (!stop_.load()) {
      struct pollfd accept_fd = {listen_fd_, POLLIN, 0};
      if (::poll(&accept_fd, 1, 20) <= 0) continue;
      const int fd = ::accept(listen_fd_, nullptr, nullptr);
      if (fd < 0) continue;
      LineFramer framer(1u << 20);
      LineFramer::Line line;
      char buffer[4096];
      bool open = true;
      while (open && !stop_.load()) {
        struct pollfd read_fd = {fd, POLLIN, 0};
        if (::poll(&read_fd, 1, 20) <= 0) continue;
        const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
        if (n <= 0) break;
        framer.Feed(buffer, static_cast<size_t>(n));
        while (open && framer.Next(&line)) {
          Result<JsonlFields> parsed = ParseJsonlLine(line.text);
          const std::string id =
              parsed.ok() ? JsonlField(parsed.value(), "id") : "";
          std::string response;
          switch (NextAction(id)) {
            case FakeAction::kOk:
              response = "{\"id\":\"" + id + "\",\"ok\":true}\n";
              break;
            case FakeAction::kExhausted:
              response = "{\"id\":\"" + id +
                         "\",\"ok\":false,\"error\":\"resource_exhausted\","
                         "\"message\":\"try later\"}\n";
              break;
            case FakeAction::kDropConnection:
              open = false;
              continue;
          }
          size_t sent = 0;
          while (sent < response.size()) {
            const ssize_t w = ::send(fd, response.data() + sent,
                                     response.size() - sent, MSG_NOSIGNAL);
            if (w <= 0) {
              open = false;
              break;
            }
            sent += static_cast<size_t>(w);
          }
        }
      }
      ::close(fd);
    }
  }

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> stop_{false};
  std::thread thread_;
  std::mutex mutex_;
  std::map<std::string, Schedule> schedules_;
  std::map<std::string, size_t> attempts_;
};

RetryClientOptions FastRetryOptions() {
  RetryClientOptions options;
  options.max_attempts = 4;
  options.base_backoff_ms = 1.0;
  options.max_backoff_ms = 5.0;
  return options;
}

std::vector<std::string> Lines(const std::string& blob) {
  std::vector<std::string> lines;
  std::istringstream in(blob);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

TEST(RetryClientTest, RetriesShedRequestUntilServedAndAnnotatesAttempts) {
  FakeServer server;
  server.SetSchedule("b", {FakeAction::kExhausted, FakeAction::kExhausted,
                           FakeAction::kOk});

  std::istringstream in(
      "{\"id\":\"a\",\"graph\":\"g\"}\n"
      "{\"id\":\"b\",\"graph\":\"g\"}\n"
      "{\"id\":\"c\",\"graph\":\"g\"}\n");
  std::ostringstream out;
  RetryClientStats stats;
  ASSERT_TRUE(RunRetryingJsonlClient("127.0.0.1", server.port(), in, out,
                                     FastRetryOptions(), &stats)
                  .ok());

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 3u);
  // Input order, regardless of retry timing.
  EXPECT_NE(lines[0].find("\"id\":\"a\""), std::string::npos);
  EXPECT_NE(lines[1].find("\"id\":\"b\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"id\":\"c\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[1].find("\"ok\":true"), std::string::npos);
  EXPECT_NE(lines[2].find("\"ok\":true"), std::string::npos);
  // Only the shed request carries the attempts annotation.
  EXPECT_EQ(lines[0].find("attempts"), std::string::npos);
  EXPECT_NE(lines[1].find("\"attempts\":3"), std::string::npos) << lines[1];
  EXPECT_EQ(lines[2].find("attempts"), std::string::npos);

  EXPECT_EQ(stats.requests, 3u);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.reconnects, 0u);
  EXPECT_EQ(stats.gave_up, 0u);
  EXPECT_EQ(server.attempts_seen("b"), 3u);
}

TEST(RetryClientTest, KeepsLastErrorAfterExhaustingAttempts) {
  FakeServer server;
  server.SetSchedule("x", {FakeAction::kExhausted});  // repeats forever

  std::istringstream in("{\"id\":\"x\",\"graph\":\"g\"}\n");
  std::ostringstream out;
  RetryClientOptions options = FastRetryOptions();
  options.max_attempts = 3;
  RetryClientStats stats;
  ASSERT_TRUE(RunRetryingJsonlClient("127.0.0.1", server.port(), in, out,
                                     options, &stats)
                  .ok());

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"error\":\"resource_exhausted\""),
            std::string::npos)
      << lines[0];
  EXPECT_NE(lines[0].find("\"attempts\":3"), std::string::npos);
  EXPECT_EQ(stats.retries, 2u);
  EXPECT_EQ(stats.gave_up, 1u);
  EXPECT_EQ(server.attempts_seen("x"), 3u);
}

TEST(RetryClientTest, ReconnectsWhenServerDropsConnectionMidStream) {
  FakeServer server;
  server.SetSchedule("r", {FakeAction::kDropConnection, FakeAction::kOk});

  std::istringstream in("{\"id\":\"r\",\"graph\":\"g\"}\n");
  std::ostringstream out;
  RetryClientStats stats;
  ASSERT_TRUE(RunRetryingJsonlClient("127.0.0.1", server.port(), in, out,
                                     FastRetryOptions(), &stats)
                  .ok());

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  EXPECT_NE(lines[0].find("\"ok\":true"), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"attempts\":2"), std::string::npos);
  EXPECT_EQ(stats.reconnects, 1u);
  EXPECT_EQ(stats.gave_up, 0u);
}

TEST(RetryClientTest, SynthesizesTerminalErrorWhenEveryAttemptIsDropped) {
  FakeServer server;
  server.SetSchedule("gone", {FakeAction::kDropConnection});

  std::istringstream in("{\"id\":\"gone\",\"graph\":\"g\"}\n");
  std::ostringstream out;
  RetryClientOptions options = FastRetryOptions();
  options.max_attempts = 2;
  RetryClientStats stats;
  ASSERT_TRUE(RunRetryingJsonlClient("127.0.0.1", server.port(), in, out,
                                     options, &stats)
                  .ok());

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 1u);
  // No server response ever arrived: the client synthesizes the error,
  // echoing the request id.
  EXPECT_NE(lines[0].find("\"id\":\"gone\""), std::string::npos) << lines[0];
  EXPECT_NE(lines[0].find("\"ok\":false"), std::string::npos);
  EXPECT_NE(lines[0].find("no response after 2 attempts"), std::string::npos);
  EXPECT_EQ(stats.gave_up, 1u);
}

TEST(RetryClientTest, UnreachableServerFailsAfterRetryBudget) {
  // Port 1 on loopback: nothing listens there.
  std::istringstream in("{\"id\":\"a\",\"graph\":\"g\"}\n");
  std::ostringstream out;
  RetryClientOptions options = FastRetryOptions();
  options.max_attempts = 2;
  const Status status =
      RunRetryingJsonlClient("127.0.0.1", 1, in, out, options, nullptr);
  EXPECT_FALSE(status.ok());
}

TEST(RetryClientTest, EndToEndAgainstRealServer) {
  SocketServer server(SocketServerOptions{});
  ASSERT_TRUE(server.Start().ok());
  ServiceOptions service_options;
  service_options.num_workers = 2;
  service_options.on_task_complete = [&server] { server.Wake(); };
  QueryService service(service_options);
  ASSERT_TRUE(service.store().Load("fig2", Figure2Graph()).ok());
  std::thread serving([&] {
    JsonlOptions jsonl;
    jsonl.deterministic = true;
    EXPECT_TRUE(server.Serve(service, jsonl).ok());
  });

  std::istringstream in(
      "{\"id\":\"q1\",\"graph\":\"fig2\",\"tau\":2}\n"
      "{\"id\":\"q2\",\"graph\":\"fig2\",\"kind\":\"pf\"}\n");
  std::ostringstream out;
  RetryClientStats stats;
  const Status status = RunRetryingJsonlClient(
      "127.0.0.1", server.port(), in, out, FastRetryOptions(), &stats);
  server.RequestDrain();
  server.Wake();
  serving.join();
  ASSERT_TRUE(status.ok()) << status.ToString();

  const std::vector<std::string> lines = Lines(out.str());
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"id\":\"q1\""), std::string::npos);
  EXPECT_NE(lines[0].find("\"size\":6"), std::string::npos) << lines[0];
  EXPECT_NE(lines[1].find("\"beta\":3"), std::string::npos) << lines[1];
  EXPECT_EQ(stats.retries, 0u);
}

}  // namespace
}  // namespace mbc

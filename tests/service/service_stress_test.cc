// Copyright 2026 The balanced-clique Authors.
//
// Concurrency stress for the query service: many client threads fire
// mixed MBC / PF / gMBC queries at a shared service while graphs are
// loaded and evicted underneath them, and every answer must equal the
// single-threaded reference. Sizes are kept small so the test stays fast
// under ThreadSanitizer, which is the main point: any data race between
// workers, the cache shards, the store's shared_mutex, or the stats
// counters shows up here.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "src/service/query_service.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

struct ReferenceAnswers {
  std::map<uint32_t, size_t> mbc_size_by_tau;  // tau -> |C*|
  uint32_t beta = 0;
  std::vector<uint32_t> gmbc_sizes;
};

constexpr uint32_t kNumGraphs = 3;
constexpr uint32_t kMaxTau = 3;

std::string GraphName(uint32_t g) {
  std::string name = "g";
  name += std::to_string(g);
  return name;
}

SignedGraph MakeGraph(uint32_t g) {
  return RandomSignedGraph(28 + 4 * g, 160 + 30 * g, 0.45, 100 + g);
}

TEST(ServiceStressTest, ConcurrentMixedQueriesMatchSequentialAnswers) {
  // Phase 1: single-threaded reference through the same service API.
  std::vector<ReferenceAnswers> expected(kNumGraphs);
  {
    ServiceOptions options;
    options.num_workers = 1;
    QueryService reference(options);
    for (uint32_t g = 0; g < kNumGraphs; ++g) {
      ASSERT_TRUE(reference.store().Load(GraphName(g), MakeGraph(g)).ok());
      for (uint32_t tau = 1; tau <= kMaxTau; ++tau) {
        QueryRequest request;
        request.graph = GraphName(g);
        request.kind = QueryKind::kMbc;
        request.tau = tau;
        QueryResponse response = reference.Query(request);
        ASSERT_TRUE(response.status.ok()) << response.status.ToString();
        expected[g].mbc_size_by_tau[tau] = response.result.clique.size();
      }
      QueryRequest pf;
      pf.graph = GraphName(g);
      pf.kind = QueryKind::kPf;
      QueryResponse pf_response = reference.Query(pf);
      ASSERT_TRUE(pf_response.status.ok());
      expected[g].beta = pf_response.result.beta;
      QueryRequest gmbc;
      gmbc.graph = GraphName(g);
      gmbc.kind = QueryKind::kGmbc;
      QueryResponse gmbc_response = reference.Query(gmbc);
      ASSERT_TRUE(gmbc_response.status.ok());
      expected[g].gmbc_sizes = gmbc_response.result.gmbc_sizes;
    }
  }

  // Phase 2: hammer a fresh service from many threads.
  ServiceOptions options;
  options.num_workers = 4;
  options.max_queue = 64;
  QueryService service(options);
  for (uint32_t g = 0; g < kNumGraphs; ++g) {
    ASSERT_TRUE(service.store().Load(GraphName(g), MakeGraph(g)).ok());
  }

  constexpr uint32_t kClientThreads = 8;
  constexpr uint32_t kQueriesPerThread = 60;
  std::atomic<uint32_t> mismatches{0};
  std::atomic<uint32_t> failures{0};

  std::vector<std::thread> clients;
  clients.reserve(kClientThreads);
  for (uint32_t t = 0; t < kClientThreads; ++t) {
    clients.emplace_back([&, t] {
      // Deterministic per-thread schedule; a cheap LCG mixes the stream.
      uint64_t state = 0x9e3779b97f4a7c15ull * (t + 1);
      for (uint32_t i = 0; i < kQueriesPerThread; ++i) {
        state = state * 6364136223846793005ull + 1442695040888963407ull;
        const uint32_t g = static_cast<uint32_t>((state >> 33) % kNumGraphs);
        const uint32_t pick = static_cast<uint32_t>((state >> 17) % 10);
        QueryRequest request;
        request.graph = GraphName(g);
        // Every 4th request of half the threads bypasses the cache, so the
        // solvers themselves (not just cache plumbing) run concurrently.
        request.no_cache = (t % 2 == 0) && (i % 4 == 0);
        if (pick < 6) {
          request.kind = QueryKind::kMbc;
          request.tau = 1 + static_cast<uint32_t>((state >> 7) % kMaxTau);
        } else if (pick < 9) {
          request.kind = QueryKind::kPf;
        } else {
          request.kind = QueryKind::kGmbc;
        }
        QueryResponse response = service.Query(request);
        if (!response.status.ok()) {
          failures.fetch_add(1, std::memory_order_relaxed);
          continue;
        }
        bool match = true;
        switch (request.kind) {
          case QueryKind::kMbc:
            match = response.result.clique.size() ==
                    expected[g].mbc_size_by_tau[request.tau];
            break;
          case QueryKind::kPf:
            match = response.result.beta == expected[g].beta;
            break;
          case QueryKind::kGmbc:
            match = response.result.beta == expected[g].beta &&
                    response.result.gmbc_sizes == expected[g].gmbc_sizes;
            break;
          case QueryKind::kMbcHeu:
          case QueryKind::kMbcTol:
            break;  // Not issued by this schedule.
        }
        if (!match) mismatches.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_EQ(failures.load(), 0u);
  EXPECT_EQ(mismatches.load(), 0u);
  const ServiceStats stats = service.Stats();
  EXPECT_EQ(stats.queries_served, kClientThreads * kQueriesPerThread);
  EXPECT_GT(stats.cache.hits, 0u);
}

TEST(ServiceStressTest, ConcurrentLoadEvictUnderQueries) {
  // Clients query "stable" while a churn thread loads/evicts other names.
  // Queries must either succeed with the right answer or fail NotFound
  // (when they race an evicted name) — never crash, hang, or corrupt.
  ServiceOptions options;
  options.num_workers = 4;
  QueryService service(options);
  ASSERT_TRUE(service.store().Load("stable", MakeGraph(0)).ok());

  QueryRequest probe;
  probe.graph = "stable";
  probe.kind = QueryKind::kMbc;
  probe.tau = 1;
  const size_t expected_size = service.Query(probe).result.clique.size();

  std::atomic<bool> stop{false};
  std::thread churn([&] {
    uint32_t round = 0;
    while (!stop.load(std::memory_order_relaxed)) {
      const std::string name = "churn" + std::to_string(round % 2);
      if (service.store().Load(name, MakeGraph(1 + round % 2)).ok()) {
        QueryRequest request;
        request.graph = name;
        request.kind = QueryKind::kMbc;
        request.tau = 1;
        service.Query(request);
        service.store().Evict(name);
      }
      ++round;
    }
  });

  std::atomic<uint32_t> bad{0};
  std::vector<std::thread> clients;
  for (uint32_t t = 0; t < 4; ++t) {
    clients.emplace_back([&] {
      for (uint32_t i = 0; i < 40; ++i) {
        QueryRequest request = probe;
        request.no_cache = i % 2 == 0;
        QueryResponse response = service.Query(request);
        if (!response.status.ok() ||
            response.result.clique.size() != expected_size) {
          bad.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (std::thread& client : clients) client.join();
  stop.store(true);
  churn.join();
  EXPECT_EQ(bad.load(), 0u);
}

}  // namespace
}  // namespace mbc

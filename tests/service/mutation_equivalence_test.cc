// Copyright 2026 The balanced-clique Authors.
//
// Randomized equivalence suite for the streaming mutation path: seeded
// batches interleaved with queries must answer exactly as a from-scratch
// solve of the graph materialized at that version. no_cache responses are
// compared clique-for-clique; cached-path responses are held to size and
// validity (a survivor entry guarantees the optimum size, not the bytes
// of one particular witness).
#include <atomic>
#include <map>
#include <thread>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/common/fingerprint.h"
#include "src/core/brute_force.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/graph/signed_graph_builder.h"
#include "src/service/query_service.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Sign>;

SignedGraph Materialize(VertexId n, const EdgeMap& edges) {
  SignedGraphBuilder builder(n);
  for (const auto& [key, sign] : edges) {
    builder.AddEdge(key.first, key.second, sign);
  }
  return std::move(builder).Build();
}

EdgeMap ExtractEdges(const SignedGraph& graph) {
  EdgeMap edges;
  for (VertexId u = 0; u < graph.NumVertices(); ++u) {
    for (const VertexId v : graph.PositiveNeighbors(u)) {
      if (u < v) edges[{u, v}] = Sign::kPositive;
    }
    for (const VertexId v : graph.NegativeNeighbors(u)) {
      if (u < v) edges[{u, v}] = Sign::kNegative;
    }
  }
  return edges;
}

void ExpectSameGraph(const SignedGraph& got, const SignedGraph& want) {
  ASSERT_EQ(got.NumVertices(), want.NumVertices());
  ASSERT_EQ(got.NumEdges(), want.NumEdges());
  for (VertexId v = 0; v < want.NumVertices(); ++v) {
    const auto gp = got.PositiveNeighbors(v);
    const auto wp = want.PositiveNeighbors(v);
    ASSERT_TRUE(std::equal(gp.begin(), gp.end(), wp.begin(), wp.end()))
        << "positive row of " << v;
    const auto gn = got.NegativeNeighbors(v);
    const auto wn = want.NegativeNeighbors(v);
    ASSERT_TRUE(std::equal(gn.begin(), gn.end(), wn.begin(), wn.end()))
        << "negative row of " << v;
  }
}

/// Deterministic churn source. Each batch has 1-4 ops with distinct edge
/// keys (a batch may not touch one edge twice); the reference map is
/// updated with the same add/flip/remove/noop semantics the delta layer
/// implements.
class Churn {
 public:
  explicit Churn(uint64_t seed) : rng_(seed) {}

  MutationBatch NextBatch(VertexId n, EdgeMap* edges) {
    MutationBatch batch;
    std::map<std::pair<VertexId, VertexId>, bool> used;
    const int ops = 1 + static_cast<int>(Next() % 4);
    for (int i = 0; i < ops; ++i) {
      VertexId u = static_cast<VertexId>(Next() % n);
      VertexId v = static_cast<VertexId>(Next() % n);
      if (u == v) continue;
      if (u > v) std::swap(u, v);
      if (!used.emplace(std::make_pair(u, v), true).second) continue;
      if (Next() % 3 == 0) {
        batch.remove.emplace_back(u, v);
        edges->erase({u, v});  // noop when absent, like the delta layer
      } else {
        const Sign sign = (Next() % 2 == 0) ? Sign::kPositive
                                            : Sign::kNegative;
        batch.add.push_back({u, v, sign});
        (*edges)[{u, v}] = sign;  // insert or flip; noop when same sign
      }
    }
    return batch;
  }

 private:
  uint64_t Next() {
    rng_ ^= rng_ << 13;
    rng_ ^= rng_ >> 7;
    rng_ ^= rng_ << 17;
    return rng_;
  }
  uint64_t rng_;
};

QueryRequest MbcRequest(uint32_t tau, bool no_cache) {
  QueryRequest request;
  request.graph = "g";
  request.kind = QueryKind::kMbc;
  request.tau = tau;
  request.no_cache = no_cache;
  return request;
}

/// Interleaves seeded mutation batches with queries; every no_cache
/// answer must equal a from-scratch MaxBalancedCliqueStar solve of the
/// reference graph at that version, and the head CSR must be identical
/// to a clean build. Exercised at 1 worker (the determinism reference)
/// and 4 workers.
void RunSeededEquivalence(size_t num_workers, uint64_t seed) {
  ServiceOptions options;
  options.num_workers = num_workers;
  QueryService service(options);

  const VertexId n = 30;
  SignedGraph base = testing_util::RandomSignedGraph(n, 90, 0.3, seed);
  EdgeMap edges = ExtractEdges(base);
  // Load the re-materialized map so service and reference share one base.
  ASSERT_TRUE(service.store().Load("g", Materialize(n, edges)).ok());

  Churn churn(seed * 0x9e3779b97f4a7c15ull + 1);
  for (int round = 0; round < 12; ++round) {
    const MutationBatch batch = churn.NextBatch(n, &edges);
    const auto applied = service.MutateGraph("g", batch);
    ASSERT_TRUE(applied.ok()) << applied.status().message();

    const SignedGraph reference = Materialize(n, edges);
    const auto head = service.store().Find("g");
    ASSERT_TRUE(head.ok());
    ExpectSameGraph(head.value()->graph(), reference);
    EXPECT_EQ(applied.value().version, head.value()->version());
    EXPECT_EQ(applied.value().fingerprint, head.value()->fingerprint());

    for (const uint32_t tau : {1u, 2u}) {
      MbcStarResult want = MaxBalancedCliqueStar(reference, tau);
      want.clique.Canonicalize();

      QueryResponse fresh = service.Query(MbcRequest(tau, true));
      ASSERT_TRUE(fresh.status.ok()) << fresh.status.message();
      fresh.result.clique.Canonicalize();
      EXPECT_EQ(fresh.result.clique.left, want.clique.left)
          << "round " << round << " tau " << tau;
      EXPECT_EQ(fresh.result.clique.right, want.clique.right)
          << "round " << round << " tau " << tau;

      // Cached path: may be served by a rekeyed survivor, which
      // guarantees optimum size and validity but not witness bytes.
      QueryResponse cached = service.Query(MbcRequest(tau, false));
      ASSERT_TRUE(cached.status.ok()) << cached.status.message();
      EXPECT_EQ(cached.result.clique.size(), want.clique.size());
      if (cached.result.clique.size() > 0) {
        EXPECT_TRUE(IsBalancedClique(reference, cached.result.clique));
      }
    }

    if (round % 4 == 3) {
      // Force compaction mid-stream: the head fingerprint becomes the
      // content address and surviving cache entries are rekeyed.
      const auto snap = service.SnapshotGraph("g");
      ASSERT_TRUE(snap.ok());
      EXPECT_EQ(snap.value().fingerprint, FingerprintSignedGraph(reference));
    }
  }
}

TEST(MutationEquivalenceTest, SeededInterleavingOneWorker) {
  RunSeededEquivalence(1, 5);
}

TEST(MutationEquivalenceTest, SeededInterleavingFourWorkers) {
  RunSeededEquivalence(4, 6);
}

TEST(MutationEquivalenceTest, BruteForceOracleOnSmallGraph) {
  ServiceOptions options;
  options.num_workers = 1;
  QueryService service(options);

  const VertexId n = 12;
  EdgeMap edges = ExtractEdges(testing_util::RandomSignedGraph(n, 26, 0.3, 3));
  ASSERT_TRUE(service.store().Load("g", Materialize(n, edges)).ok());

  Churn churn(0xabcdef12345ull);
  for (int round = 0; round < 10; ++round) {
    ASSERT_TRUE(service.MutateGraph("g", churn.NextBatch(n, &edges)).ok());
    const SignedGraph reference = Materialize(n, edges);
    const BalancedClique oracle = BruteForceMaxBalancedClique(reference, 1);

    const QueryResponse got = service.Query(MbcRequest(1, true));
    ASSERT_TRUE(got.status.ok());
    EXPECT_EQ(got.result.clique.size(), oracle.size()) << "round " << round;
    if (got.result.clique.size() > 0) {
      EXPECT_TRUE(IsBalancedClique(reference, got.result.clique));
    }
  }
}

TEST(MutationEquivalenceTest, HeldSnapshotKeepsItsVersionAcrossMutations) {
  QueryService service{ServiceOptions{}};
  const VertexId n = 10;
  EdgeMap edges = ExtractEdges(testing_util::RandomSignedGraph(n, 20, 0.3, 9));
  ASSERT_TRUE(service.store().Load("g", Materialize(n, edges)).ok());

  const auto held = service.store().Find("g");
  ASSERT_TRUE(held.ok());
  const SignedGraph before = Materialize(n, edges);
  const uint64_t held_fingerprint = held.value()->fingerprint();

  Churn churn(77);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(service.MutateGraph("g", churn.NextBatch(n, &edges)).ok());
  }

  // The in-flight handle still reads its own version, bit for bit.
  EXPECT_EQ(held.value()->version(), 0u);
  EXPECT_EQ(held.value()->fingerprint(), held_fingerprint);
  ExpectSameGraph(held.value()->graph(), before);

  const auto head = service.store().Find("g");
  ASSERT_TRUE(head.ok());
  EXPECT_GT(head.value()->version(), 0u);
  ExpectSameGraph(head.value()->graph(), Materialize(n, edges));
}

/// Concurrency smoke for TSan: one mutator thread streams batches while
/// reader threads query the same name. Every response must be OK (or a
/// clean admission error never surfaces here — the queue is deep enough),
/// and the head must converge to the reference map once the mutator is
/// done. Run under -DMBC_SANITIZE=thread this doubles as the data-race
/// check on the head-swap / snapshot-handle path.
TEST(MutationEquivalenceTest, ConcurrentMutatorAndReaders) {
  ServiceOptions options;
  options.num_workers = 4;
  QueryService service(options);

  const VertexId n = 40;
  EdgeMap edges =
      ExtractEdges(testing_util::RandomSignedGraph(n, 120, 0.3, 21));
  ASSERT_TRUE(service.store().Load("g", Materialize(n, edges)).ok());

  std::atomic<bool> done{false};
  std::atomic<int> failures{0};

  std::thread mutator([&] {
    Churn churn(4242);
    for (int i = 0; i < 60; ++i) {
      if (!service.MutateGraph("g", churn.NextBatch(n, &edges)).ok()) {
        failures.fetch_add(1);
      }
    }
    done.store(true);
  });

  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      int i = 0;
      while (!done.load()) {
        const QueryResponse response =
            service.Query(MbcRequest(1, (r + i++) % 2 == 0));
        if (!response.status.ok()) failures.fetch_add(1);
        const size_t size = response.result.clique.size();
        if (size != response.result.clique.left.size() +
                        response.result.clique.right.size()) {
          failures.fetch_add(1);
        }
      }
    });
  }
  mutator.join();
  for (std::thread& reader : readers) reader.join();
  EXPECT_EQ(failures.load(), 0);

  const auto head = service.store().Find("g");
  ASSERT_TRUE(head.ok());
  ExpectSameGraph(head.value()->graph(), Materialize(n, edges));
  const QueryResponse final_answer = service.Query(MbcRequest(1, true));
  ASSERT_TRUE(final_answer.status.ok());
  MbcStarResult want = MaxBalancedCliqueStar(Materialize(n, edges), 1);
  EXPECT_EQ(final_answer.result.clique.size(), want.clique.size());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/datasets/registry.h"

#include <set>

#include <gtest/gtest.h>

#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/pf/pf_star.h"

namespace mbc {
namespace {

TEST(RegistryTest, HasAllFourteenPaperDatasets) {
  const auto& specs = AllDatasetSpecs();
  ASSERT_EQ(specs.size(), 14u);
  std::set<std::string> names;
  for (const DatasetSpec& spec : specs) names.insert(spec.name);
  for (const char* expected :
       {"Bitcoin", "AdjWordNet", "Reddit", "Referendum", "Epinions",
        "WikiConflict", "Amazon", "BookCross", "DBLP", "Douban",
        "TripAdvisor", "YahooSong", "SN1", "SN2"}) {
    EXPECT_TRUE(names.count(expected)) << expected;
  }
}

TEST(RegistryTest, FindByName) {
  Result<DatasetSpec> found = FindDatasetSpec("Douban");
  ASSERT_TRUE(found.ok());
  EXPECT_EQ(found.value().paper_beta, 43u);
  EXPECT_EQ(found.value().paper_cstar_tau3, 116u);
  EXPECT_TRUE(FindDatasetSpec("NoSuchDataset").status().IsNotFound());
}

TEST(RegistryTest, SpecsMatchPaperTable1) {
  const DatasetSpec spec = FindDatasetSpec("BookCross").ValueOrDie();
  EXPECT_EQ(spec.paper_vertices, 63535u);
  EXPECT_EQ(spec.paper_edges, 3890104u);
  EXPECT_NEAR(spec.paper_negative_ratio, 0.07, 1e-9);
  EXPECT_EQ(spec.paper_cstar_tau3, 550u);
  EXPECT_EQ(spec.paper_beta, 118u);
}

TEST(RegistryTest, ScalingRespectsPlantedCliques) {
  const DatasetSpec spec = FindDatasetSpec("TripAdvisor").ValueOrDie();
  // Even at tiny scale, enough vertices for the planted 1916-clique.
  EXPECT_GE(spec.ScaledVertices(0.001), 1916u * 4);
  // Exempt datasets ignore the scale.
  const DatasetSpec bitcoin = FindDatasetSpec("Bitcoin").ValueOrDie();
  EXPECT_EQ(bitcoin.ScaledVertices(0.01), bitcoin.paper_vertices);
}

TEST(RegistryTest, GeneratedStandInHasGroundTruth) {
  // Generate a small-scale Epinions stand-in and verify that the planted
  // cliques make |C*| and β at least their paper values' planted parts.
  const DatasetSpec spec = FindDatasetSpec("Epinions").ValueOrDie();
  const SignedGraph graph = GenerateDataset(spec, 0.02);
  const MbcStarResult mbc = MaxBalancedCliqueStar(graph, 3);
  EXPECT_TRUE(IsBalancedClique(graph, mbc.clique));
  EXPECT_GE(mbc.clique.size(), 15u);  // planted (3,12)
  const PfStarResult pf = PolarizationFactorStar(graph);
  EXPECT_GE(pf.beta, 6u);  // planted (6,6)
}

TEST(RegistryTest, NegativeRatioIsRespected) {
  const DatasetSpec spec = FindDatasetSpec("WikiConflict").ValueOrDie();
  const SignedGraph graph = GenerateDataset(spec, 0.02);
  EXPECT_NEAR(graph.NegativeEdgeRatio(), spec.paper_negative_ratio, 0.08);
}

TEST(RegistryTest, GenerationIsDeterministic) {
  const DatasetSpec spec = FindDatasetSpec("Bitcoin").ValueOrDie();
  const SignedGraph a = GenerateDataset(spec, 1.0);
  const SignedGraph b = GenerateDataset(spec, 1.0);
  EXPECT_EQ(a.NumEdges(), b.NumEdges());
  EXPECT_EQ(a.NumVertices(), b.NumVertices());
}

TEST(RegistryTest, ScaleFromEnvClamped) {
  setenv("MBC_SCALE", "0.5", 1);
  EXPECT_DOUBLE_EQ(DatasetScaleFromEnv(), 0.5);
  setenv("MBC_SCALE", "7", 1);
  EXPECT_DOUBLE_EQ(DatasetScaleFromEnv(), 1.0);
  unsetenv("MBC_SCALE");
  EXPECT_DOUBLE_EQ(DatasetScaleFromEnv(), 1.0 / 16.0);
}

}  // namespace
}  // namespace mbc

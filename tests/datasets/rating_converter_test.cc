// Copyright 2026 The balanced-clique Authors.
#include "src/datasets/rating_converter.h"

#include <gtest/gtest.h>

#include "src/core/mbc_star.h"
#include "src/core/verify.h"

namespace mbc {
namespace {

TEST(RatingConverterTest, AgreementMakesPositiveEdge) {
  // Users 0 and 1 agree on three items.
  std::vector<Rating> ratings;
  for (uint32_t item = 0; item < 3; ++item) {
    ratings.push_back({0, item, 5.0f});
    ratings.push_back({1, item, 4.5f});
  }
  const SignedGraph graph = SignedGraphFromRatings(ratings, 2);
  EXPECT_TRUE(graph.HasPositiveEdge(0, 1));
}

TEST(RatingConverterTest, DisagreementMakesNegativeEdge) {
  std::vector<Rating> ratings;
  for (uint32_t item = 0; item < 3; ++item) {
    ratings.push_back({0, item, 5.0f});
    ratings.push_back({1, item, 1.0f});
  }
  const SignedGraph graph = SignedGraphFromRatings(ratings, 2);
  EXPECT_TRUE(graph.HasNegativeEdge(0, 1));
}

TEST(RatingConverterTest, TooFewCommonItemsMeansNoEdge) {
  std::vector<Rating> ratings = {{0, 0, 5.0f}, {1, 0, 5.0f},
                                 {0, 1, 5.0f}, {1, 1, 5.0f}};
  RatingConversionOptions options;
  options.min_common_items = 3;
  const SignedGraph graph = SignedGraphFromRatings(ratings, 2, options);
  EXPECT_EQ(graph.NumEdges(), 0u);
}

TEST(RatingConverterTest, MixedSignalsMakeNoEdge) {
  // Half agree, half disagree: neither majority reached.
  std::vector<Rating> ratings;
  for (uint32_t item = 0; item < 2; ++item) {
    ratings.push_back({0, item, 5.0f});
    ratings.push_back({1, item, 5.0f});
  }
  for (uint32_t item = 2; item < 4; ++item) {
    ratings.push_back({0, item, 5.0f});
    ratings.push_back({1, item, 1.0f});
  }
  const SignedGraph graph = SignedGraphFromRatings(ratings, 4);
  EXPECT_EQ(graph.EdgeSign(0, 1), std::nullopt);
}

TEST(RatingConverterTest, PopularItemsSkipped) {
  RatingConversionOptions options;
  options.max_raters_per_item = 2;
  options.min_common_items = 1;
  std::vector<Rating> ratings;
  for (uint32_t user = 0; user < 5; ++user) {
    ratings.push_back({user, 0, 5.0f});  // item 0 rated by 5 users
  }
  const SignedGraph graph = SignedGraphFromRatings(ratings, 5, options);
  EXPECT_EQ(graph.NumEdges(), 0u);
}

TEST(RatingConverterTest, TwoCampCorpusYieldsBalancedStructure) {
  const std::vector<Rating> ratings = GenerateTwoCampRatings(
      /*num_users=*/40, /*num_items=*/30, /*ratings_per_user=*/20, 7);
  const SignedGraph graph = SignedGraphFromRatings(ratings, 40);
  EXPECT_GT(graph.NumEdges(), 50u);
  // Within-camp edges should be positive, cross-camp negative: the
  // maximum balanced clique at τ=3 must be substantial.
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 3);
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
  EXPECT_GE(result.clique.size(), 8u);
  EXPECT_GE(result.clique.MinSide(), 3u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/datasets/generators.h"

#include <cmath>

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/graph/graph_io.h"

namespace mbc {
namespace {

TEST(CommunityGeneratorTest, HitsTargetScale) {
  CommunityGraphOptions options;
  options.num_vertices = 5000;
  options.num_edges = 30000;
  options.negative_ratio = 0.25;
  options.seed = 1;
  const SignedGraph graph = GenerateCommunitySignedGraph(options);
  EXPECT_EQ(graph.NumVertices(), 5000u);
  // Top-up sampling compensates for de-duplication; the realized count
  // lands within a few percent of the target on either side.
  EXPECT_GT(graph.NumEdges(), 28500u);
  EXPECT_LE(graph.NumEdges(), 33000u);
  // Community-size-dependent de-duplication skews the realized ratio by a
  // few percent on dense settings.
  EXPECT_NEAR(graph.NegativeEdgeRatio(), 0.25, 0.05);
}

TEST(CommunityGeneratorTest, NegativeRatioAcrossRange) {
  for (double rho : {0.05, 0.3, 0.63, 0.72}) {
    CommunityGraphOptions options;
    options.num_vertices = 4000;
    options.num_edges = 40000;
    options.negative_ratio = rho;
    options.seed = 7;
    const SignedGraph graph = GenerateCommunitySignedGraph(options);
    EXPECT_NEAR(graph.NegativeEdgeRatio(), rho, 0.05) << "rho=" << rho;
  }
}

TEST(CommunityGeneratorTest, DeterministicGivenSeed) {
  CommunityGraphOptions options;
  options.num_vertices = 1000;
  options.num_edges = 5000;
  options.seed = 11;
  const SignedGraph a = GenerateCommunitySignedGraph(options);
  const SignedGraph b = GenerateCommunitySignedGraph(options);
  EXPECT_EQ(SignedEdgeListToString(a), SignedEdgeListToString(b));
  options.seed = 12;
  const SignedGraph c = GenerateCommunitySignedGraph(options);
  EXPECT_NE(SignedEdgeListToString(a), SignedEdgeListToString(c));
}

TEST(CommunityGeneratorTest, PowerLawSkewsDegrees) {
  CommunityGraphOptions options;
  options.num_vertices = 5000;
  options.num_edges = 30000;
  options.powerlaw_alpha = 0.7;
  options.seed = 3;
  const SignedGraph skewed = GenerateCommunitySignedGraph(options);
  options.powerlaw_alpha = 0.0;
  const SignedGraph uniform = GenerateCommunitySignedGraph(options);
  uint32_t skewed_max = 0;
  uint32_t uniform_max = 0;
  for (VertexId v = 0; v < 5000; ++v) {
    skewed_max = std::max(skewed_max, skewed.Degree(v));
    uniform_max = std::max(uniform_max, uniform.Degree(v));
  }
  EXPECT_GT(skewed_max, 2 * uniform_max);
}

TEST(PlantBalancedCliquesTest, PlantedCliqueIsValid) {
  CommunityGraphOptions options;
  options.num_vertices = 2000;
  options.num_edges = 10000;
  options.seed = 5;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  std::vector<PlantedCliqueMembers> members;
  const SignedGraph graph =
      PlantBalancedCliques(base, {{6, 8}, {0, 12}}, 9, &members);
  ASSERT_EQ(members.size(), 2u);
  ASSERT_EQ(members[0].left.size(), 6u);
  ASSERT_EQ(members[0].right.size(), 8u);
  ASSERT_EQ(members[1].right.size(), 12u);

  BalancedClique first;
  first.left = members[0].left;
  first.right = members[0].right;
  EXPECT_TRUE(IsBalancedClique(graph, first));
  BalancedClique second;
  second.left = members[1].right;  // all-positive clique
  EXPECT_TRUE(IsBalancedClique(graph, second));
}

TEST(PlantBalancedCliquesTest, SpecsUseDisjointVertices) {
  const SignedGraph base = [] {
    CommunityGraphOptions options;
    options.num_vertices = 500;
    options.num_edges = 2000;
    options.seed = 2;
    return GenerateCommunitySignedGraph(options);
  }();
  std::vector<PlantedCliqueMembers> members;
  PlantBalancedCliques(base, {{3, 3}, {4, 4}}, 1, &members);
  std::vector<VertexId> all;
  for (const auto& m : members) {
    all.insert(all.end(), m.left.begin(), m.left.end());
    all.insert(all.end(), m.right.begin(), m.right.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(PlantBalancedCliquesTest, PreservesOtherEdgesAndVertexCount) {
  CommunityGraphOptions options;
  options.num_vertices = 300;
  options.num_edges = 1200;
  options.seed = 8;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 6);
  EXPECT_EQ(graph.NumVertices(), base.NumVertices());
  // Edge count only grows (clique pairs get fully connected).
  EXPECT_GE(graph.NumEdges() + 28, base.NumEdges());
}

TEST(PlantBalancedCliquesDeathTest, RejectsOversizedPlant) {
  CommunityGraphOptions options;
  options.num_vertices = 10;
  options.num_edges = 20;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  EXPECT_DEATH(PlantBalancedCliques(base, {{8, 8}}, 1), "not enough");
}

}  // namespace
}  // namespace mbc

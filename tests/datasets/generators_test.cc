// Copyright 2026 The balanced-clique Authors.
#include "src/datasets/generators.h"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/graph/binary_io.h"
#include "src/graph/graph_io.h"

namespace mbc {
namespace {

TEST(CommunityGeneratorTest, HitsTargetScale) {
  CommunityGraphOptions options;
  options.num_vertices = 5000;
  options.num_edges = 30000;
  options.negative_ratio = 0.25;
  options.seed = 1;
  const SignedGraph graph = GenerateCommunitySignedGraph(options);
  EXPECT_EQ(graph.NumVertices(), 5000u);
  // Top-up sampling compensates for de-duplication; the realized count
  // lands within a few percent of the target on either side.
  EXPECT_GT(graph.NumEdges(), 28500u);
  EXPECT_LE(graph.NumEdges(), 33000u);
  // Community-size-dependent de-duplication skews the realized ratio by a
  // few percent on dense settings.
  EXPECT_NEAR(graph.NegativeEdgeRatio(), 0.25, 0.05);
}

TEST(CommunityGeneratorTest, NegativeRatioAcrossRange) {
  for (double rho : {0.05, 0.3, 0.63, 0.72}) {
    CommunityGraphOptions options;
    options.num_vertices = 4000;
    options.num_edges = 40000;
    options.negative_ratio = rho;
    options.seed = 7;
    const SignedGraph graph = GenerateCommunitySignedGraph(options);
    EXPECT_NEAR(graph.NegativeEdgeRatio(), rho, 0.05) << "rho=" << rho;
  }
}

TEST(CommunityGeneratorTest, DeterministicGivenSeed) {
  CommunityGraphOptions options;
  options.num_vertices = 1000;
  options.num_edges = 5000;
  options.seed = 11;
  const SignedGraph a = GenerateCommunitySignedGraph(options);
  const SignedGraph b = GenerateCommunitySignedGraph(options);
  EXPECT_EQ(SignedEdgeListToString(a), SignedEdgeListToString(b));
  options.seed = 12;
  const SignedGraph c = GenerateCommunitySignedGraph(options);
  EXPECT_NE(SignedEdgeListToString(a), SignedEdgeListToString(c));
}

TEST(CommunityGeneratorTest, PowerLawSkewsDegrees) {
  CommunityGraphOptions options;
  options.num_vertices = 5000;
  options.num_edges = 30000;
  options.powerlaw_alpha = 0.7;
  options.seed = 3;
  const SignedGraph skewed = GenerateCommunitySignedGraph(options);
  options.powerlaw_alpha = 0.0;
  const SignedGraph uniform = GenerateCommunitySignedGraph(options);
  uint32_t skewed_max = 0;
  uint32_t uniform_max = 0;
  for (VertexId v = 0; v < 5000; ++v) {
    skewed_max = std::max(skewed_max, skewed.Degree(v));
    uniform_max = std::max(uniform_max, uniform.Degree(v));
  }
  EXPECT_GT(skewed_max, 2 * uniform_max);
}

TEST(PlantBalancedCliquesTest, PlantedCliqueIsValid) {
  CommunityGraphOptions options;
  options.num_vertices = 2000;
  options.num_edges = 10000;
  options.seed = 5;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  std::vector<PlantedCliqueMembers> members;
  const SignedGraph graph =
      PlantBalancedCliques(base, {{6, 8}, {0, 12}}, 9, &members);
  ASSERT_EQ(members.size(), 2u);
  ASSERT_EQ(members[0].left.size(), 6u);
  ASSERT_EQ(members[0].right.size(), 8u);
  ASSERT_EQ(members[1].right.size(), 12u);

  BalancedClique first;
  first.left = members[0].left;
  first.right = members[0].right;
  EXPECT_TRUE(IsBalancedClique(graph, first));
  BalancedClique second;
  second.left = members[1].right;  // all-positive clique
  EXPECT_TRUE(IsBalancedClique(graph, second));
}

TEST(PlantBalancedCliquesTest, SpecsUseDisjointVertices) {
  const SignedGraph base = [] {
    CommunityGraphOptions options;
    options.num_vertices = 500;
    options.num_edges = 2000;
    options.seed = 2;
    return GenerateCommunitySignedGraph(options);
  }();
  std::vector<PlantedCliqueMembers> members;
  PlantBalancedCliques(base, {{3, 3}, {4, 4}}, 1, &members);
  std::vector<VertexId> all;
  for (const auto& m : members) {
    all.insert(all.end(), m.left.begin(), m.left.end());
    all.insert(all.end(), m.right.begin(), m.right.end());
  }
  std::sort(all.begin(), all.end());
  EXPECT_EQ(std::adjacent_find(all.begin(), all.end()), all.end());
}

TEST(PlantBalancedCliquesTest, PreservesOtherEdgesAndVertexCount) {
  CommunityGraphOptions options;
  options.num_vertices = 300;
  options.num_edges = 1200;
  options.seed = 8;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 6);
  EXPECT_EQ(graph.NumVertices(), base.NumVertices());
  // Edge count only grows (clique pairs get fully connected).
  EXPECT_GE(graph.NumEdges() + 28, base.NumEdges());
}

TEST(PlantBalancedCliquesDeathTest, RejectsOversizedPlant) {
  CommunityGraphOptions options;
  options.num_vertices = 10;
  options.num_edges = 20;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  EXPECT_DEATH(PlantBalancedCliques(base, {{8, 8}}, 1), "not enough");
}

std::string BsclTempPath(const char* name) {
  return ::testing::TempDir() + "/" + name;
}

std::string BsclSlurp(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr);
  std::string contents;
  char buffer[4096];
  size_t got = 0;
  while ((got = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    contents.append(buffer, got);
  }
  std::fclose(f);
  return contents;
}

TEST(BsclGeneratorTest, SameSeedYieldsByteIdenticalBinary) {
  BsclOptions options;
  options.num_vertices = 3000;
  options.num_edges = 15000;
  options.seed = 42;
  const std::string path_a = BsclTempPath("bscl_det_a.mbcg");
  const std::string path_b = BsclTempPath("bscl_det_b.mbcg");
  ASSERT_TRUE(
      WriteSignedGraphBinary(GenerateBsclSignedGraph(options), path_a)
          .ok());
  ASSERT_TRUE(
      WriteSignedGraphBinary(GenerateBsclSignedGraph(options), path_b)
          .ok());
  EXPECT_EQ(BsclSlurp(path_a), BsclSlurp(path_b));
  std::remove(path_a.c_str());
  std::remove(path_b.c_str());
}

TEST(BsclGeneratorTest, ByteIdenticalAcrossConcurrentGenerations) {
  // The generator owns all its state, so parallel generations with the
  // same seed must not interfere — each thread writes the same bytes.
  BsclOptions options;
  options.num_vertices = 1000;
  options.num_edges = 5000;
  options.seed = 9;
  std::vector<std::string> blobs(4);
  std::vector<std::thread> threads;
  for (size_t i = 0; i < blobs.size(); ++i) {
    threads.emplace_back([&options, &blobs, i] {
      const std::string path =
          BsclTempPath(("bscl_thread_" + std::to_string(i) + ".mbcg")
                           .c_str());
      ASSERT_TRUE(
          WriteSignedGraphBinary(GenerateBsclSignedGraph(options), path)
              .ok());
      blobs[i] = BsclSlurp(path);
      std::remove(path.c_str());
    });
  }
  for (std::thread& t : threads) t.join();
  for (size_t i = 1; i < blobs.size(); ++i) {
    EXPECT_EQ(blobs[0], blobs[i]) << "thread " << i << " diverged";
  }
}

TEST(BsclGeneratorTest, DifferentSeedsDiverge) {
  BsclOptions options;
  options.num_vertices = 500;
  options.num_edges = 2500;
  options.seed = 1;
  const SignedGraph a = GenerateBsclSignedGraph(options);
  options.seed = 2;
  const SignedGraph b = GenerateBsclSignedGraph(options);
  EXPECT_NE(SignedEdgeListToString(a), SignedEdgeListToString(b));
}

TEST(BsclGeneratorTest, DegreeAndSignDistributionSanity) {
  BsclOptions options;
  options.num_vertices = 10000;
  options.num_edges = 50000;
  options.p_positive_sign = 0.9;
  options.seed = 5;
  const SignedGraph graph = GenerateBsclSignedGraph(options);

  // Rewiring loses a few duplicate/self-loop draws; the realized edge
  // count must still land near the target.
  EXPECT_GE(graph.NumEdges(), options.num_edges * 4 / 5);
  EXPECT_LE(graph.NumEdges(), options.num_edges);

  // Sign balance: triangle closing re-signs some edges, but the overall
  // negative ratio has to track 1 - p_positive_sign loosely.
  const double neg_ratio =
      static_cast<double>(graph.NumNegativeEdges()) /
      static_cast<double>(graph.NumEdges());
  EXPECT_GT(neg_ratio, 0.02);
  EXPECT_LT(neg_ratio, 0.35);

  // Chung-Lu power-law skeleton: a heavy tail means the max degree is
  // far above the mean (flat random graphs sit within a small factor).
  const double mean_degree =
      2.0 * static_cast<double>(graph.NumEdges()) /
      static_cast<double>(graph.NumVertices());
  uint64_t max_degree = 0;
  for (VertexId v = 0; v < graph.NumVertices(); ++v) {
    max_degree = std::max<uint64_t>(
        max_degree, graph.PositiveDegree(v) + graph.NegativeDegree(v));
  }
  EXPECT_GT(static_cast<double>(max_degree), 8.0 * mean_degree);

  // Structural sanity the builder guarantees and the reader re-checks:
  // no self loops, symmetric adjacency — a cheap spot check here.
  for (VertexId v = 0; v < graph.NumVertices(); v += 101) {
    for (VertexId w : graph.PositiveNeighbors(v)) {
      ASSERT_NE(w, v);
      EXPECT_EQ(graph.EdgeSign(w, v), Sign::kPositive);
    }
  }
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/related/balanced_subgraph.h"

#include <gtest/gtest.h>

#include "src/core/mbc_star.h"
#include "src/graph/balance.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::FromText;
using testing_util::RandomSignedGraph;

// The result must always induce a balanced subgraph.
TEST(BalancedSubgraphTest, ResultIsAlwaysBalanced) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(120, 700, 0.45, seed);
    const BalancedSubgraphResult result = LargeBalancedSubgraph(graph, seed);
    const SignedGraph::InducedResult induced =
        graph.InducedSubgraph(result.vertices);
    EXPECT_TRUE(CheckGraphBalance(induced.graph).balanced)
        << "seed=" << seed;
  }
}

TEST(BalancedSubgraphTest, KeepsEverythingWhenAlreadyBalanced) {
  const SignedGraph graph = FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  const BalancedSubgraphResult result = LargeBalancedSubgraph(graph, 1);
  EXPECT_EQ(result.vertices.size(), 4u);
  EXPECT_EQ(result.residual_frustration, 0u);
}

TEST(BalancedSubgraphTest, SidesCertifyTheSubgraph) {
  const SignedGraph graph = RandomSignedGraph(100, 600, 0.4, 3);
  const BalancedSubgraphResult result = LargeBalancedSubgraph(graph, 3);
  ASSERT_EQ(result.sides.size(), result.vertices.size());
  // No frustrated edge among the kept vertices under the kept sides.
  for (size_t i = 0; i < result.vertices.size(); ++i) {
    for (size_t j = i + 1; j < result.vertices.size(); ++j) {
      const auto sign =
          graph.EdgeSign(result.vertices[i], result.vertices[j]);
      if (!sign.has_value()) continue;
      const bool same = result.sides[i] == result.sides[j];
      EXPECT_TRUE(*sign == Sign::kPositive ? same : !same);
    }
  }
}

TEST(BalancedSubgraphTest, ContainsAtLeastTheMaxBalancedCliqueSizeBound) {
  // A balanced clique is a balanced subgraph, so a decent heuristic on a
  // graph dominated by a planted balanced clique should keep a large
  // vertex set (sanity bound: at least 2 vertices on any non-empty graph
  // with an agreeing edge).
  const SignedGraph graph = testing_util::Figure2Graph();
  const BalancedSubgraphResult result = LargeBalancedSubgraph(graph, 5);
  EXPECT_GE(result.vertices.size(), 2u);
}

TEST(BalancedSubgraphTest, EmptyGraph) {
  const BalancedSubgraphResult result = LargeBalancedSubgraph(SignedGraph());
  EXPECT_TRUE(result.vertices.empty());
}

TEST(BalancedSubgraphTest, DeterministicGivenSeed) {
  const SignedGraph graph = RandomSignedGraph(150, 900, 0.4, 11);
  const BalancedSubgraphResult a = LargeBalancedSubgraph(graph, 42);
  const BalancedSubgraphResult b = LargeBalancedSubgraph(graph, 42);
  EXPECT_EQ(a.vertices, b.vertices);
}

}  // namespace
}  // namespace mbc

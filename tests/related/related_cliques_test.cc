// Copyright 2026 The balanced-clique Authors.
#include "src/related/related_cliques.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::FromText;
using testing_util::RandomSignedGraph;

// Brute-force references.
std::vector<VertexId> BruteTrusted(const SignedGraph& graph) {
  const VertexId n = graph.NumVertices();
  std::vector<VertexId> best;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> set;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) set.push_back(v);
    }
    bool ok = true;
    for (size_t i = 0; i < set.size() && ok; ++i) {
      for (size_t j = i + 1; j < set.size(); ++j) {
        if (!graph.HasPositiveEdge(set[i], set[j])) {
          ok = false;
          break;
        }
      }
    }
    if (ok && set.size() > best.size()) best = set;
  }
  return best;
}

size_t BruteAlphaK(const SignedGraph& graph, double alpha, uint32_t k) {
  const VertexId n = graph.NumVertices();
  size_t best = 0;
  for (uint32_t mask = 1; mask < (1u << n); ++mask) {
    std::vector<VertexId> set;
    for (VertexId v = 0; v < n; ++v) {
      if (mask & (1u << v)) set.push_back(v);
    }
    if (set.size() > best && IsAlphaKClique(graph, set, alpha, k)) {
      best = set.size();
    }
  }
  return best;
}

TEST(TrustedCliqueTest, Figure2) {
  // Largest all-positive clique in Figure 2: any of the positive
  // triangles {v3,v4,v5} / {v6,v7,v8}.
  const std::vector<VertexId> clique = MaxTrustedClique(Figure2Graph());
  EXPECT_EQ(clique.size(), 3u);
  for (size_t i = 0; i < clique.size(); ++i) {
    for (size_t j = i + 1; j < clique.size(); ++j) {
      EXPECT_TRUE(Figure2Graph().HasPositiveEdge(clique[i], clique[j]));
    }
  }
}

TEST(TrustedCliqueTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(14, 55, 0.4, seed);
    EXPECT_EQ(MaxTrustedClique(graph).size(), BruteTrusted(graph).size())
        << "seed=" << seed;
  }
}

TEST(TrustedCliqueTest, AllNegativeGraphGivesSingleton) {
  const SignedGraph graph = FromText("0 1 -1\n1 2 -1\n0 2 -1\n");
  EXPECT_EQ(MaxTrustedClique(graph).size(), 1u);
}

TEST(AlphaKCliqueTest, ValidatorHandExamples) {
  // Triangle: ++- . Vertex 0: edges (0,1)+ (0,2)-.
  const SignedGraph graph = FromText("0 1 1\n1 2 1\n0 2 -1\n");
  // alpha=1, k=1: each vertex needs >= 1 positive and <= 1 negative.
  EXPECT_TRUE(IsAlphaKClique(graph, {0, 1, 2}, 1.0, 1));
  // alpha=2, k=1: vertex 0 has only 1 positive neighbor inside.
  EXPECT_FALSE(IsAlphaKClique(graph, {0, 1, 2}, 2.0, 1));
  // k=0: vertex 0 has a negative neighbor inside.
  EXPECT_FALSE(IsAlphaKClique(graph, {0, 1, 2}, 1.0, 0));
  // Non-clique rejected.
  EXPECT_FALSE(IsAlphaKClique(FromText("0 1 1\n1 2 1\n"), {0, 1, 2}, 0, 1));
}

TEST(AlphaKCliqueTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const SignedGraph graph = RandomSignedGraph(12, 45, 0.45, seed);
    for (const auto& [alpha, k] :
         std::vector<std::pair<double, uint32_t>>{{1.0, 1}, {2.0, 1},
                                                  {1.0, 2}, {0.5, 2}}) {
      AlphaKCliqueOptions options;
      options.alpha = alpha;
      options.k = k;
      const AlphaKCliqueResult result = MaxAlphaKClique(graph, options);
      EXPECT_EQ(result.clique.size(), BruteAlphaK(graph, alpha, k))
          << "seed=" << seed << " alpha=" << alpha << " k=" << k;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsAlphaKClique(graph, result.clique, alpha, k));
      }
    }
  }
}

TEST(AlphaKCliqueTest, BalancedCliqueNeedNotBeAlphaK) {
  // The paper's Related Work point: the notions are incomparable. The
  // Figure 2 optimum {v3,v4,v5 | v6,v7,v8} has 3 negative neighbors per
  // vertex, so it is not a (1,2)-clique, while a (1,2)-clique found on
  // the same graph need not be balanced.
  const SignedGraph graph = Figure2Graph();
  // Each member has 2 positive (own triangle) and 3 negative neighbors.
  const std::vector<VertexId> balanced = {2, 3, 4, 5, 6, 7};
  EXPECT_FALSE(IsAlphaKClique(graph, balanced, 1.0, 2));   // neg 3 > 2
  EXPECT_FALSE(IsAlphaKClique(graph, balanced, 1.0, 3));   // pos 2 < 3
  EXPECT_TRUE(IsAlphaKClique(graph, balanced, 2.0 / 3.0, 3));
}

TEST(AlphaKCliqueTest, TimeLimitDegradesGracefully) {
  const SignedGraph graph = RandomSignedGraph(400, 4000, 0.4, 3);
  AlphaKCliqueOptions options;
  options.alpha = 1.0;
  options.k = 2;
  options.time_limit_seconds = 0.0;
  const AlphaKCliqueResult result = MaxAlphaKClique(graph, options);
  if (!result.clique.empty()) {
    EXPECT_TRUE(IsAlphaKClique(graph, result.clique, 1.0, 2));
  }
}

}  // namespace
}  // namespace mbc

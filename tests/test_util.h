// Copyright 2026 The balanced-clique Authors.
//
// Shared fixtures for the test suite, including concrete renderings of the
// paper's toy graphs (Figures 2-4).
#ifndef MBC_TESTS_TEST_UTIL_H_
#define MBC_TESTS_TEST_UTIL_H_

#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <sstream>
#include <string>

#include "src/common/logging.h"
#include "src/datasets/generators.h"
#include "src/graph/signed_graph.h"
#include "src/graph/signed_graph_builder.h"

namespace mbc {
namespace testing_util {

/// Parses a `u v s` edge list, preserving numeric vertex ids verbatim
/// (unlike ParseSignedEdgeList, which densifies by first appearance).
inline SignedGraph FromText(const std::string& text) {
  SignedGraphBuilder builder;
  std::istringstream in(text);
  long long u = 0;
  long long v = 0;
  long long s = 0;
  while (in >> u >> v >> s) {
    MBC_CHECK(s == 1 || s == -1);
    builder.AddEdge(static_cast<VertexId>(u), static_cast<VertexId>(v),
                    s == 1 ? Sign::kPositive : Sign::kNegative);
  }
  return std::move(builder).Build();
}

/// The running example of the paper's Figure 2 (concrete rendering
/// consistent with all facts stated in Section II): 8 vertices,
/// C = {v1,v2 | v3,v4} is a balanced clique, the maximum balanced clique
/// for τ=2 is C* = {v3,v4,v5 | v6,v7,v8} of size 6, and β(G) = 3.
/// Vertex vi has id i-1.
inline SignedGraph Figure2Graph() {
  return FromText(R"(
    0 1 1
    2 3 1
    0 2 -1
    0 3 -1
    1 2 -1
    1 3 -1
    2 4 1
    3 4 1
    5 6 1
    5 7 1
    6 7 1
    2 5 -1
    2 6 -1
    2 7 -1
    3 5 -1
    3 6 -1
    3 7 -1
    4 5 -1
    4 6 -1
    4 7 -1
  )");
}

/// The paper's Figure 3: a complete signed graph on 6 vertices whose
/// unsigned coloring bound is 6, but whose maximum balanced clique has size
/// 3 for τ=0 and 2 for τ=1. Rendered as K6 with a negative perfect
/// matching {(0,3), (1,4), (2,5)} (all other edges positive).
inline SignedGraph Figure3Graph() {
  std::string text;
  for (int u = 0; u < 6; ++u) {
    for (int v = u + 1; v < 6; ++v) {
      const bool negative = (v - u) == 3;
      text += std::to_string(u) + " " + std::to_string(v) +
              (negative ? " -1\n" : " 1\n");
    }
  }
  return FromText(text);
}

/// A concrete rendering of the paper's Figure 4(a) (Example 1): v0 has
/// positive neighbors {v1, v3, v4} and negative neighbors {v5, v6, v7};
/// v2 and v8 are not adjacent to v0. The ego-network G_v0 has 12 edges
/// among v0's neighbors, of which exactly 6 are conflicting:
/// (v1,v4)-, (v1,v5)+, (v3,v5)+, (v4,v5)+, (v3,v7)+, (v4,v7)+.
/// Vertex vi has id i.
inline SignedGraph Figure4Graph() {
  return FromText(R"(
    0 1 1
    0 3 1
    0 4 1
    0 5 -1
    0 6 -1
    0 7 -1
    1 4 -1
    1 5 1
    3 5 1
    4 5 1
    3 7 1
    4 7 1
    1 3 1
    3 4 1
    6 7 1
    5 6 1
    1 6 -1
    4 6 -1
    1 2 1
    7 8 -1
  )");
}

/// Deterministic random signed graph for property tests.
inline SignedGraph RandomSignedGraph(VertexId n, EdgeCount m,
                                     double negative_ratio, uint64_t seed) {
  CommunityGraphOptions options;
  options.num_vertices = n;
  options.num_edges = m;
  options.num_communities = 3;
  options.negative_ratio = negative_ratio;
  options.intra_community_bias = 0.6;
  options.powerlaw_alpha = 0.4;
  options.seed = seed;
  return GenerateCommunitySignedGraph(options);
}

/// Raw blocking loopback client for transport tests that need finer
/// control than RunJsonlSocketClient (held-open connections, partial
/// writes, abrupt disconnects). Returns the connected fd, or -1.
inline int ConnectLoopback(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  struct sockaddr_in addr = {};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

/// Blocking send of the whole buffer. Returns false on any error.
inline bool SendAll(int fd, const std::string& data) {
  size_t sent = 0;
  while (sent < data.size()) {
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return false;
    sent += static_cast<size_t>(n);
  }
  return true;
}

/// Blocking read until the peer closes (or errors). Returns the bytes.
inline std::string RecvAll(int fd) {
  std::string out;
  char buffer[4096];
  for (;;) {
    const ssize_t n = ::recv(fd, buffer, sizeof(buffer), 0);
    if (n < 0 && errno == EINTR) continue;
    if (n <= 0) return out;
    out.append(buffer, static_cast<size_t>(n));
  }
}

}  // namespace testing_util
}  // namespace mbc

#endif  // MBC_TESTS_TEST_UTIL_H_

// Copyright 2026 The balanced-clique Authors.
//
// End-to-end pipeline tests: dataset stand-in generation → all solvers →
// consistent, verified answers; mirrors what the experiment binaries do.
#include <gtest/gtest.h>

#include "src/core/mbc_adv.h"
#include "src/core/mbc_baseline.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/datasets/registry.h"
#include "src/gmbc/gmbc.h"
#include "src/pf/pf_bs.h"
#include "src/pf/pf_star.h"
#include "src/polarseeds/metrics.h"
#include "src/polarseeds/polar_seeds.h"

namespace mbc {
namespace {

// A small-scale Bitcoin stand-in exercised through the whole pipeline.
class PipelineTest : public ::testing::Test {
 protected:
  static void SetUpTestSuite() {
    const DatasetSpec spec = FindDatasetSpec("Bitcoin").ValueOrDie();
    graph_ = new SignedGraph(GenerateDataset(spec, 1.0));
  }
  static void TearDownTestSuite() {
    delete graph_;
    graph_ = nullptr;
  }
  static const SignedGraph& graph() { return *graph_; }

 private:
  static SignedGraph* graph_;
};

SignedGraph* PipelineTest::graph_ = nullptr;

TEST_F(PipelineTest, MbcStarFindsPlantedOptimum) {
  const MbcStarResult result = MaxBalancedCliqueStar(graph(), 3);
  EXPECT_TRUE(IsBalancedClique(graph(), result.clique));
  // Planted cliques: (5,5) and (4,7) — |C*| at τ=3 is at least 11.
  EXPECT_GE(result.clique.size(), 11u);
}

TEST_F(PipelineTest, SolversAgree) {
  const size_t star = MaxBalancedCliqueStar(graph(), 3).clique.size();
  const MbcAdvResult adv = MaxBalancedCliqueAdv(graph(), 3);
  EXPECT_FALSE(adv.timed_out);
  EXPECT_EQ(star, adv.clique.size());
  MbcBaselineOptions baseline_options;
  baseline_options.time_limit_seconds = 60.0;
  const MbcBaselineResult baseline =
      MaxBalancedCliqueBaseline(graph(), 3, baseline_options);
  if (!baseline.timed_out) {
    EXPECT_EQ(star, baseline.clique.size());
  }
}

TEST_F(PipelineTest, PolarizationFactorConsistent) {
  const PfStarResult star = PolarizationFactorStar(graph());
  EXPECT_GE(star.beta, 5u);  // planted (5,5)
  EXPECT_EQ(star.beta, PolarizationFactorBinarySearch(graph()).beta);
  EXPECT_TRUE(IsBalancedClique(graph(), star.witness));
}

TEST_F(PipelineTest, GeneralizedSolutionsConsistent) {
  const GeneralizedMbcResult gmbc = GeneralizedMbcStar(graph());
  const PfStarResult pf = PolarizationFactorStar(graph());
  EXPECT_EQ(gmbc.beta, pf.beta);
  // The τ=3 entry matches the direct MBC* run.
  const size_t direct = MaxBalancedCliqueStar(graph(), 3).clique.size();
  ASSERT_GE(gmbc.cliques.size(), 4u);
  EXPECT_EQ(gmbc.cliques[3].size(), direct);
}

TEST_F(PipelineTest, MaxBalancedCliqueBeatsPolarSeedsOnPolarity) {
  // The paper's Figure 5 claim, checked end-to-end on the stand-in.
  const MbcStarResult best = MaxBalancedCliqueStar(graph(), 3);
  const PolarizedCommunity clique_community{best.clique.left,
                                            best.clique.right};
  const double clique_polarity = Polarity(graph(), clique_community);

  const auto seeds = PickGoodSeedPairs(graph(), 10, 3, 42);
  ASSERT_FALSE(seeds.empty());
  double polarseeds_total = 0.0;
  for (const auto& [u, v] : seeds) {
    polarseeds_total += Polarity(graph(), PolarSeedsCommunity(graph(), u, v));
  }
  const double polarseeds_avg =
      polarseeds_total / static_cast<double>(seeds.size());
  EXPECT_GT(clique_polarity, polarseeds_avg);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/core/mbc_heu.h"

#include <gtest/gtest.h>

#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

TEST(MbcHeuTest, AlwaysReturnsValidBalancedClique) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SignedGraph graph = RandomSignedGraph(120, 700, 0.4, seed);
    const BalancedClique clique = MbcHeuristic(graph, 0);
    EXPECT_TRUE(IsBalancedClique(graph, clique)) << "seed=" << seed;
    EXPECT_FALSE(clique.empty());
  }
}

TEST(MbcHeuTest, RespectsThreshold) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SignedGraph graph = RandomSignedGraph(120, 700, 0.4, seed);
    for (uint32_t tau : {1u, 2u, 3u}) {
      const BalancedClique clique = MbcHeuristic(graph, tau);
      if (!clique.empty()) {
        EXPECT_TRUE(clique.SatisfiesThreshold(tau));
        EXPECT_TRUE(IsBalancedClique(graph, clique));
      }
    }
  }
}

TEST(MbcHeuTest, FindsPaperExampleOptimum) {
  // On the Figure 2 graph the greedy anchored at v3/v4 (max min-degree)
  // grows the optimal 6-clique.
  const SignedGraph graph = Figure2Graph();
  const BalancedClique clique = MbcHeuristic(graph, 2);
  EXPECT_TRUE(IsBalancedClique(graph, clique));
  EXPECT_EQ(clique.size(), 6u);
}

TEST(MbcHeuTest, ReturnsEmptyWhenThresholdUnreachable) {
  const SignedGraph graph =
      testing_util::FromText("0 1 1\n1 2 1\n0 2 1\n");  // all positive
  const BalancedClique clique = MbcHeuristic(graph, 1);
  EXPECT_TRUE(clique.empty());
}

TEST(MbcHeuTest, AnchoredVariantUsesGivenVertex) {
  const SignedGraph graph = Figure2Graph();
  // Anchored at v1 (id 0), the reachable clique is {v1, v2 | v3, v4}.
  const BalancedClique clique = MbcHeuristicAt(graph, 0, 2);
  EXPECT_TRUE(IsBalancedClique(graph, clique));
  EXPECT_EQ(clique.size(), 4u);
}

TEST(MbcHeuTest, RecoversLargePlantedClique) {
  // Uniform degrees so the planted members dominate min{d+, d-}.
  CommunityGraphOptions options;
  options.num_vertices = 3000;
  options.num_edges = 15000;
  options.negative_ratio = 0.3;
  options.powerlaw_alpha = 0.0;
  options.seed = 5;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  std::vector<PlantedCliqueMembers> members;
  const SignedGraph graph =
      PlantBalancedCliques(base, {{20, 25}}, 77, &members);
  const BalancedClique clique = MbcHeuristic(graph, 3);
  EXPECT_TRUE(IsBalancedClique(graph, clique));
  // The planted clique dominates min{d+, d-}, so the heuristic anchors
  // inside it and recovers a large chunk.
  EXPECT_GE(clique.size(), 40u);
}

TEST(MbcHeuTest, SingleVertexGraph) {
  SignedGraphBuilder builder(1);
  const SignedGraph graph = std::move(builder).Build();
  const BalancedClique clique = MbcHeuristic(graph, 0);
  EXPECT_EQ(clique.size(), 1u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/core/mbc_enum.h"

#include <algorithm>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::FromText;
using testing_util::RandomSignedGraph;

std::vector<BalancedClique> Collect(const SignedGraph& graph, uint32_t tau,
                                    MbcEnumOptions options = {}) {
  std::vector<BalancedClique> cliques;
  EnumerateMaximalBalancedCliques(
      graph, tau,
      [&cliques](const BalancedClique& clique) { cliques.push_back(clique); },
      options);
  return cliques;
}

TEST(MbcEnumTest, Figure2MaximalCliquesAtTau2) {
  const std::vector<BalancedClique> cliques = Collect(Figure2Graph(), 2);
  // Exactly two maximal balanced cliques satisfy τ=2: {v1,v2|v3,v4} and
  // {v3,v4,v5|v6,v7,v8}.
  ASSERT_EQ(cliques.size(), 2u);
  std::set<std::vector<VertexId>> sets;
  for (const BalancedClique& clique : cliques) {
    sets.insert(clique.AllVertices());
  }
  EXPECT_TRUE(sets.count({0, 1, 2, 3}));
  EXPECT_TRUE(sets.count({2, 3, 4, 5, 6, 7}));
}

TEST(MbcEnumTest, EveryReportedCliqueIsValidAndMaximal) {
  const SignedGraph graph = RandomSignedGraph(14, 50, 0.45, 3);
  const std::vector<BalancedClique> cliques = Collect(graph, 1);
  for (const BalancedClique& clique : cliques) {
    EXPECT_TRUE(IsBalancedClique(graph, clique));
    EXPECT_TRUE(clique.SatisfiesThreshold(1));
    // Maximality: no vertex extends either side.
    for (VertexId w = 0; w < graph.NumVertices(); ++w) {
      bool extends_left = true;
      bool extends_right = true;
      for (VertexId v : clique.left) {
        if (v == w) extends_left = extends_right = false;
        extends_left = extends_left && graph.HasPositiveEdge(v, w);
        extends_right = extends_right && graph.HasNegativeEdge(v, w);
      }
      for (VertexId v : clique.right) {
        if (v == w) extends_left = extends_right = false;
        extends_left = extends_left && graph.HasNegativeEdge(v, w);
        extends_right = extends_right && graph.HasPositiveEdge(v, w);
      }
      EXPECT_FALSE(extends_left) << "vertex " << w << " extends C_L of "
                                 << clique.ToString();
      EXPECT_FALSE(extends_right) << "vertex " << w << " extends C_R of "
                                  << clique.ToString();
    }
  }
}

TEST(MbcEnumTest, NoDuplicatesReported) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(13, 45, 0.45, seed);
    const std::vector<BalancedClique> cliques = Collect(graph, 1);
    std::set<std::vector<VertexId>> sets;
    for (const BalancedClique& clique : cliques) {
      EXPECT_TRUE(sets.insert(clique.AllVertices()).second)
          << "duplicate " << clique.ToString() << " seed=" << seed;
    }
  }
}

TEST(MbcEnumTest, LargestMaximalMatchesBruteForceMaximum) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(14, 55, 0.4, seed);
    for (uint32_t tau : {1u, 2u}) {
      size_t largest = 0;
      for (const BalancedClique& clique : Collect(graph, tau)) {
        largest = std::max(largest, clique.size());
      }
      EXPECT_EQ(largest, BruteForceMaxBalancedClique(graph, tau).size())
          << "seed=" << seed << " tau=" << tau;
    }
  }
}

TEST(MbcEnumTest, ReductionVariantsAgreeOnCount) {
  for (uint64_t seed = 2; seed <= 6; ++seed) {
    const SignedGraph graph = RandomSignedGraph(14, 50, 0.45, seed);
    MbcEnumOptions raw;
    raw.apply_reductions = false;
    EXPECT_EQ(Collect(graph, 2).size(), Collect(graph, 2, raw).size())
        << "seed=" << seed;
  }
}

TEST(MbcEnumTest, MaxCliquesTruncates) {
  const SignedGraph graph = RandomSignedGraph(30, 200, 0.45, 5);
  MbcEnumOptions options;
  options.max_cliques = 3;
  std::vector<BalancedClique> cliques;
  const MbcEnumStats stats = EnumerateMaximalBalancedCliques(
      graph, 0,
      [&cliques](const BalancedClique& clique) { cliques.push_back(clique); },
      options);
  EXPECT_EQ(cliques.size(), 3u);
  EXPECT_TRUE(stats.truncated);
  EXPECT_EQ(stats.num_reported, 3u);
}

// Exact-set check against a brute-force maximal-clique oracle.
TEST(MbcEnumTest, ExactSetMatchesBruteForceOracle) {
  for (uint64_t seed = 31; seed <= 36; ++seed) {
    const SignedGraph graph = RandomSignedGraph(12, 40, 0.45, seed);
    const uint32_t tau = 1;

    // Oracle: all balanced cliques satisfying tau that are maximal among
    // balanced cliques (subset test over the full enumeration).
    std::vector<std::vector<VertexId>> balanced_sets;
    const VertexId n = graph.NumVertices();
    for (uint32_t mask = 0; mask < (1u << n); ++mask) {
      std::vector<VertexId> set;
      for (VertexId v = 0; v < n; ++v) {
        if (mask & (1u << v)) set.push_back(v);
      }
      if (SplitIntoBalancedClique(graph, set).has_value()) {
        balanced_sets.push_back(set);
      }
    }
    std::set<std::vector<VertexId>> oracle;
    for (const auto& candidate : balanced_sets) {
      const auto split = SplitIntoBalancedClique(graph, candidate);
      if (!split->SatisfiesThreshold(tau)) continue;
      bool maximal = true;
      for (const auto& other : balanced_sets) {
        if (other.size() <= candidate.size()) continue;
        maximal = !std::includes(other.begin(), other.end(),
                                 candidate.begin(), candidate.end());
        if (!maximal) break;
      }
      if (maximal) oracle.insert(candidate);
    }

    std::set<std::vector<VertexId>> reported;
    for (const BalancedClique& clique : Collect(graph, tau)) {
      reported.insert(clique.AllVertices());
    }
    EXPECT_EQ(reported, oracle) << "seed=" << seed;
  }
}

TEST(MbcEnumTest, TauZeroIncludesAllPositiveCliques) {
  const SignedGraph graph = FromText("0 1 1\n1 2 1\n0 2 1\n");
  const std::vector<BalancedClique> cliques = Collect(graph, 0);
  ASSERT_EQ(cliques.size(), 1u);
  EXPECT_EQ(cliques[0].AllVertices(), (std::vector<VertexId>{0, 1, 2}));
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Cross-algorithm property tests: all four maximum-balanced-clique
// algorithms (brute force, MBC, MBC-Adv, MBC*) must agree on the optimum
// size for every (graph, τ) instance, and monotonicity in τ must hold.
// Parameterized over random-graph seeds.
#include <gtest/gtest.h>

#include "src/common/env.h"
#include "src/core/brute_force.h"
#include "src/core/mbc_adv.h"
#include "src/core/mbc_baseline.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

struct SweepCase {
  uint64_t seed;
  VertexId n;
  EdgeCount m;
  double neg_ratio;
};

class CrossAlgorithmSweep : public ::testing::TestWithParam<SweepCase> {};

TEST_P(CrossAlgorithmSweep, AllAlgorithmsAgreeWithBruteForce) {
  const SweepCase& param = GetParam();
  const SignedGraph graph =
      RandomSignedGraph(param.n, param.m, param.neg_ratio, param.seed);
  for (uint32_t tau = 0; tau <= 3; ++tau) {
    const size_t expected = BruteForceMaxBalancedClique(graph, tau).size();
    const MbcStarResult star = MaxBalancedCliqueStar(graph, tau);
    const MbcBaselineResult baseline = MaxBalancedCliqueBaseline(graph, tau);
    const MbcAdvResult adv = MaxBalancedCliqueAdv(graph, tau);
    EXPECT_EQ(star.clique.size(), expected) << "MBC* tau=" << tau;
    EXPECT_EQ(baseline.clique.size(), expected) << "MBC tau=" << tau;
    EXPECT_EQ(adv.clique.size(), expected) << "MBC-Adv tau=" << tau;
    if (!star.clique.empty()) {
      EXPECT_TRUE(IsBalancedClique(graph, star.clique));
      EXPECT_TRUE(star.clique.SatisfiesThreshold(tau));
    }
    if (!baseline.clique.empty()) {
      EXPECT_TRUE(IsBalancedClique(graph, baseline.clique));
    }
    if (!adv.clique.empty()) {
      EXPECT_TRUE(IsBalancedClique(graph, adv.clique));
    }
  }
}

TEST_P(CrossAlgorithmSweep, OptimumIsMonotoneInTau) {
  const SweepCase& param = GetParam();
  const SignedGraph graph =
      RandomSignedGraph(param.n, param.m, param.neg_ratio, param.seed);
  size_t previous = SIZE_MAX;
  for (uint32_t tau = 0; tau <= 4; ++tau) {
    const size_t size = MaxBalancedCliqueStar(graph, tau).clique.size();
    EXPECT_LE(size, previous) << "tau=" << tau;  // Lemma 6
    previous = size;
  }
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    cases.push_back({seed, 14, 50, 0.45});
    cases.push_back({seed + 100, 17, 75, 0.30});
    cases.push_back({seed + 200, 12, 60, 0.60});  // dense, negative-heavy
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(
    RandomGraphs, CrossAlgorithmSweep, ::testing::ValuesIn(MakeSweep()),
    [](const ::testing::TestParamInfo<SweepCase>& param_info) {
      return "seed" + std::to_string(param_info.param.seed) + "_n" +
             std::to_string(param_info.param.n);
    });

// Larger graphs where brute force is infeasible: the three solvers must
// still agree among themselves.
class SolverConsistency : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SolverConsistency, StarMatchesBaselineAndAdv) {
  const SignedGraph graph = RandomSignedGraph(80, 500, 0.4, GetParam());
  for (uint32_t tau : {1u, 2u}) {
    const size_t star = MaxBalancedCliqueStar(graph, tau).clique.size();
    EXPECT_EQ(star, MaxBalancedCliqueBaseline(graph, tau).clique.size())
        << "tau=" << tau;
    EXPECT_EQ(star, MaxBalancedCliqueAdv(graph, tau).clique.size())
        << "tau=" << tau;
  }
}

INSTANTIATE_TEST_SUITE_P(MediumGraphs, SolverConsistency,
                         ::testing::Range<uint64_t>(1, 7));

// Opt-in deep sweep (set MBC_HEAVY_TESTS=1): hundreds of random instances
// across densities and negative ratios, every solver against brute force.
// Kept out of the default run to keep ctest fast.
TEST(HeavySweepTest, HundredsOfInstancesAgainstBruteForce) {
  if (GetEnvInt("MBC_HEAVY_TESTS", 0) == 0) {
    GTEST_SKIP() << "set MBC_HEAVY_TESTS=1 to run the deep sweep";
  }
  int instances = 0;
  for (uint64_t seed = 1; seed <= 40; ++seed) {
    for (const double neg_ratio : {0.2, 0.45, 0.7}) {
      for (const VertexId n : {10u, 14u, 18u}) {
        const SignedGraph graph =
            RandomSignedGraph(n, n * 4, neg_ratio, seed * 1000 + n);
        for (uint32_t tau = 0; tau <= 3; ++tau) {
          const size_t expected =
              BruteForceMaxBalancedClique(graph, tau).size();
          ASSERT_EQ(MaxBalancedCliqueStar(graph, tau).clique.size(),
                    expected)
              << "MBC* seed=" << seed << " n=" << n << " rho=" << neg_ratio
              << " tau=" << tau;
          ASSERT_EQ(MaxBalancedCliqueBaseline(graph, tau).clique.size(),
                    expected)
              << "MBC seed=" << seed;
          ASSERT_EQ(MaxBalancedCliqueAdv(graph, tau).clique.size(),
                    expected)
              << "MBC-Adv seed=" << seed;
          ++instances;
        }
      }
    }
  }
  EXPECT_EQ(instances, 40 * 3 * 3 * 4);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// The parallel engine's determinism contract: the returned witness is the
// canonical lexicographically-smallest maximum balanced clique, byte for
// byte the same whatever the thread count, split threshold, or steal
// schedule. These suites hammer that claim from three directions: a wide
// sweep of seeded instances, forced splits on planted heavy egos, and a
// steal-storm stress run. The TSan CI leg runs the stress suites.
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mbc_parallel.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

void ExpectSameClique(const BalancedClique& want, const BalancedClique& got,
                      const char* what, uint64_t seed) {
  EXPECT_EQ(want.left, got.left) << what << " seed=" << seed;
  EXPECT_EQ(want.right, got.right) << what << " seed=" << seed;
}

// 200 seeded instances; the 1-thread witness is the reference and every
// other thread count must reproduce it exactly — not just its size.
TEST(ParallelDeterminismTest, WitnessIdenticalAcrossThreadCounts) {
  for (uint64_t seed = 1; seed <= 200; ++seed) {
    // Vary the shape so the sweep hits empty results, singleton ego
    // survivors, and multi-optimum graphs alike.
    const uint32_t n = 12 + static_cast<uint32_t>(seed % 7);
    const uint32_t m = 40 + static_cast<uint32_t>((seed * 7) % 30);
    const SignedGraph graph = RandomSignedGraph(n, m, 0.45, seed);
    const uint32_t tau = 1 + static_cast<uint32_t>(seed % 2);

    ParallelMbcOptions options;
    options.num_threads = 1;
    const ParallelMbcResult reference =
        ParallelMaxBalancedCliqueStar(graph, tau, options);
    if (!reference.clique.empty()) {
      EXPECT_TRUE(IsBalancedClique(graph, reference.clique));
      EXPECT_TRUE(reference.clique.SatisfiesThreshold(tau));
    }
    for (uint32_t threads : {2u, 4u, 8u}) {
      options.num_threads = threads;
      const ParallelMbcResult result =
          ParallelMaxBalancedCliqueStar(graph, tau, options);
      ExpectSameClique(reference.clique, result.clique, "threads", seed);
    }
    // Forcing splits everywhere must not change the witness either.
    options.num_threads = 4;
    options.split_threshold = 2;
    const ParallelMbcResult split_result =
        ParallelMaxBalancedCliqueStar(graph, tau, options);
    ExpectSameClique(reference.clique, split_result.clique, "split", seed);
  }
}

// A planted heavy ego network, split threshold pinned low so the split
// path is guaranteed to execute (num_splits > 0), across thread counts.
TEST(ParallelDeterminismTest, ForcedSplitsKeepWitnessIdentical) {
  for (uint64_t seed = 1; seed <= 3; ++seed) {
    const SignedGraph base = RandomSignedGraph(400, 3000, 0.45, seed);
    const SignedGraph graph =
        PlantBalancedCliques(base, {{5, 5}, {4, 6}}, seed + 9);

    ParallelMbcOptions options;
    options.num_threads = 1;
    options.split_threshold = 4;
    const ParallelMbcResult reference =
        ParallelMaxBalancedCliqueStar(graph, 3, options);
    EXPECT_GT(reference.num_splits, 0u) << "seed=" << seed;
    EXPECT_GE(reference.clique.size(), 10u) << "seed=" << seed;
    EXPECT_TRUE(IsBalancedClique(graph, reference.clique));

    for (uint32_t threads : {2u, 4u, 8u}) {
      options.num_threads = threads;
      const ParallelMbcResult result =
          ParallelMaxBalancedCliqueStar(graph, 3, options);
      ExpectSameClique(reference.clique, result.clique, "forced-split",
                       seed);
      EXPECT_GT(result.num_splits, 0u)
          << "seed=" << seed << " threads=" << threads;
    }
  }
}

// Unbalanced work: one worker's deque holds a split fan-out while the
// rest start empty-handed, so thieves hammer the deque. Churn graph sizes
// across rounds to vary the contention pattern; every round must still
// produce the reference witness. (TSan leg: this is the scheduler's
// data-race certification.)
TEST(ParallelStealStressTest, StealStormsPreserveTheWitness) {
  for (uint64_t round = 1; round <= 6; ++round) {
    const uint32_t n = 150 + static_cast<uint32_t>(round) * 70;
    const SignedGraph base =
        RandomSignedGraph(n, n * 8, 0.45, round * 13);
    const SignedGraph graph =
        PlantBalancedCliques(base, {{4, 5}}, round);

    ParallelMbcOptions options;
    options.num_threads = 1;
    options.split_threshold = 2;  // max fan-out: every ego splits
    const ParallelMbcResult reference =
        ParallelMaxBalancedCliqueStar(graph, 2, options);

    options.num_threads = 8;
    for (int rep = 0; rep < 3; ++rep) {
      const ParallelMbcResult result =
          ParallelMaxBalancedCliqueStar(graph, 2, options);
      ExpectSameClique(reference.clique, result.clique, "storm", round);
      EXPECT_GT(result.num_splits, 0u) << "round=" << round;
    }
  }
}

// The incumbent-update counter reflects published improvements: searching
// without the heuristic seed must publish at least the final witness.
TEST(ParallelDeterminismTest, IncumbentUpdatesAreCounted) {
  const SignedGraph base = RandomSignedGraph(300, 2400, 0.45, 5);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 17);
  ParallelMbcOptions options;
  options.num_threads = 4;
  options.run_heuristic = false;
  const ParallelMbcResult result =
      ParallelMaxBalancedCliqueStar(graph, 2, options);
  EXPECT_GE(result.clique.size(), 8u);
  EXPECT_GT(result.num_incumbent_updates, 0u);
}

}  // namespace
}  // namespace mbc

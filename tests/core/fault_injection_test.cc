// Copyright 2026 The balanced-clique Authors.
//
// Fault-injected graceful-degradation sweep: every solver is run many
// times with a deterministic injected fault armed on its governor. A run
// that gets interrupted must still return a *valid* (possibly suboptimal)
// result and report InterruptReason::kInjectedFault; a run that finishes
// before its fault fires must report kNone and the exact answer.
#include <gtest/gtest.h>

#include "src/common/execution.h"
#include "src/core/mbc_adv.h"
#include "src/core/mbc_baseline.h"
#include "src/core/mbc_enum.h"
#include "src/core/mbc_parallel.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "src/gmbc/gmbc.h"
#include "src/pf/pf_bs.h"
#include "src/pf/pf_e.h"
#include "src/pf/pf_star.h"
#include "src/related/related_cliques.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

constexpr int kSeeds = 50;
// Per-probe trip probability. High enough that most of the 50 runs are
// interrupted somewhere inside the search, low enough that trip points
// vary across seeds (first probe, mid-reduction, mid-recursion, ...).
constexpr double kFaultProbability = 0.35;

SignedGraph TestGraph() {
  const SignedGraph base = RandomSignedGraph(300, 2500, 0.4, 77);
  return PlantBalancedCliques(base, {{4, 5}}, 3);
}

// The reason must be kInjectedFault exactly when the run was interrupted.
void ExpectFaultVerdict(const ExecutionContext& exec, bool timed_out,
                        InterruptReason reason, int seed) {
  EXPECT_EQ(timed_out, exec.Interrupted()) << "seed=" << seed;
  if (timed_out) {
    EXPECT_EQ(reason, InterruptReason::kInjectedFault) << "seed=" << seed;
  } else {
    EXPECT_EQ(reason, InterruptReason::kNone) << "seed=" << seed;
  }
}

TEST(FaultInjectionTest, MbcStarAlwaysReturnsValidClique) {
  const SignedGraph graph = TestGraph();
  const size_t exact =
      MaxBalancedCliqueStar(graph, 2).clique.size();
  int interrupted = 0;
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    MbcStarOptions options;
    options.exec = &exec;
    const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, options);
    EXPECT_TRUE(IsBalancedClique(graph, result.clique)) << "seed=" << seed;
    ExpectFaultVerdict(exec, result.stats.timed_out,
                       result.stats.interrupt_reason, seed);
    if (result.stats.timed_out) {
      ++interrupted;
      EXPECT_LE(result.clique.size(), exact) << "seed=" << seed;
    } else {
      EXPECT_EQ(result.clique.size(), exact) << "seed=" << seed;
    }
  }
  EXPECT_GT(interrupted, 0) << "fault injection never fired";
}

TEST(FaultInjectionTest, MbcBaselineAlwaysReturnsValidClique) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    MbcBaselineOptions options;
    options.exec = &exec;
    const MbcBaselineResult result =
        MaxBalancedCliqueBaseline(graph, 2, options);
    EXPECT_TRUE(IsBalancedClique(graph, result.clique)) << "seed=" << seed;
    ExpectFaultVerdict(exec, result.timed_out, result.interrupt_reason,
                       seed);
  }
}

TEST(FaultInjectionTest, MbcAdvAlwaysReturnsValidClique) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    MbcAdvOptions options;
    options.exec = &exec;
    const MbcAdvResult result = MaxBalancedCliqueAdv(graph, 2, options);
    EXPECT_TRUE(IsBalancedClique(graph, result.clique)) << "seed=" << seed;
    ExpectFaultVerdict(exec, result.timed_out, result.interrupt_reason,
                       seed);
  }
}

TEST(FaultInjectionTest, MbcEnumReportsOnlyValidCliques) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    MbcEnumOptions options;
    options.exec = &exec;
    bool all_valid = true;
    const MbcEnumStats stats = EnumerateMaximalBalancedCliques(
        graph, 2,
        [&graph, &all_valid](const BalancedClique& clique) {
          all_valid &= IsBalancedClique(graph, clique);
        },
        options);
    EXPECT_TRUE(all_valid) << "seed=" << seed;
    if (exec.Interrupted()) {
      EXPECT_TRUE(stats.truncated) << "seed=" << seed;
      EXPECT_EQ(stats.interrupt_reason, InterruptReason::kInjectedFault)
          << "seed=" << seed;
    } else {
      EXPECT_EQ(stats.interrupt_reason, InterruptReason::kNone)
          << "seed=" << seed;
    }
  }
}

TEST(FaultInjectionTest, MbcParallelAlwaysReturnsValidClique) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    ParallelMbcOptions options;
    options.num_threads = 4;
    options.exec = &exec;
    const ParallelMbcResult result =
        ParallelMaxBalancedCliqueStar(graph, 2, options);
    EXPECT_TRUE(IsBalancedClique(graph, result.clique)) << "seed=" << seed;
    ExpectFaultVerdict(exec, result.timed_out, result.interrupt_reason,
                       seed);
  }
}

TEST(FaultInjectionTest, PfStarWitnessStaysValid) {
  const SignedGraph graph = TestGraph();
  const uint32_t exact = PolarizationFactorStar(graph).beta;
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    PfStarOptions options;
    options.exec = &exec;
    const PfStarResult result = PolarizationFactorStar(graph, options);
    EXPECT_TRUE(IsBalancedClique(graph, result.witness)) << "seed=" << seed;
    EXPECT_EQ(result.witness.MinSide(), result.beta) << "seed=" << seed;
    EXPECT_LE(result.beta, exact) << "seed=" << seed;
    ExpectFaultVerdict(exec, result.stats.timed_out,
                       result.stats.interrupt_reason, seed);
  }
}

TEST(FaultInjectionTest, PfBsBetaStaysSoundLowerBound) {
  const SignedGraph graph = TestGraph();
  const uint32_t exact = PolarizationFactorStar(graph).beta;
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    PfBsOptions options;
    options.exec = &exec;
    const PfBsResult result =
        PolarizationFactorBinarySearch(graph, options);
    // Interrupted probes must never push the reported beta above truth.
    EXPECT_LE(result.beta, exact) << "seed=" << seed;
    ExpectFaultVerdict(exec, result.timed_out, result.interrupt_reason,
                       seed);
    if (!result.timed_out) {
      EXPECT_EQ(result.beta, exact) << "seed=" << seed;
    }
  }
}

TEST(FaultInjectionTest, PfEnumBetaStaysSoundLowerBound) {
  const SignedGraph graph = RandomSignedGraph(60, 350, 0.45, 21);
  const uint32_t exact = PolarizationFactorStar(graph).beta;
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    PfEOptions options;
    options.exec = &exec;
    const PfEResult result = PolarizationFactorEnum(graph, options);
    EXPECT_LE(result.beta, exact) << "seed=" << seed;
    if (!result.timed_out) {
      EXPECT_EQ(result.beta, exact) << "seed=" << seed;
    }
  }
}

TEST(FaultInjectionTest, GmbcStarKeepsPerTauInvariants) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    GeneralizedMbcOptions options;
    options.exec = &exec;
    const GeneralizedMbcResult result = GeneralizedMbcStar(graph, options);
    ASSERT_EQ(result.cliques.size(), static_cast<size_t>(result.beta) + 1)
        << "seed=" << seed;
    for (uint32_t tau = 0; tau <= result.beta; ++tau) {
      EXPECT_TRUE(IsBalancedClique(graph, result.cliques[tau]))
          << "seed=" << seed << " tau=" << tau;
      EXPECT_TRUE(result.cliques[tau].SatisfiesThreshold(tau))
          << "seed=" << seed << " tau=" << tau;
    }
    ExpectFaultVerdict(exec, result.timed_out, result.interrupt_reason,
                       seed);
  }
}

TEST(FaultInjectionTest, GmbcUpwardSweepKeepsInvariants) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    GeneralizedMbcOptions options;
    options.exec = &exec;
    const GeneralizedMbcResult result = GeneralizedMbc(graph, options);
    for (size_t tau = 0; tau < result.cliques.size(); ++tau) {
      EXPECT_TRUE(IsBalancedClique(graph, result.cliques[tau]))
          << "seed=" << seed << " tau=" << tau;
    }
    ExpectFaultVerdict(exec, result.timed_out, result.interrupt_reason,
                       seed);
  }
}

TEST(FaultInjectionTest, RelatedCliquesStayValid) {
  const SignedGraph graph = TestGraph();
  for (int seed = 0; seed < kSeeds; ++seed) {
    ExecutionContext exec;
    exec.ArmFaultInjection(kFaultProbability, static_cast<uint64_t>(seed));
    const std::vector<VertexId> trusted = MaxTrustedClique(graph, &exec);
    // A trusted clique is an all-positive clique: verify pairwise.
    for (size_t i = 0; i < trusted.size(); ++i) {
      for (size_t j = i + 1; j < trusted.size(); ++j) {
        EXPECT_EQ(graph.EdgeSign(trusted[i], trusted[j]), Sign::kPositive)
            << "seed=" << seed;
      }
    }

    ExecutionContext ak_exec;
    ak_exec.ArmFaultInjection(kFaultProbability,
                              static_cast<uint64_t>(seed) + 1000);
    AlphaKCliqueOptions options;
    options.alpha = 1.0;
    options.k = 2;
    options.exec = &ak_exec;
    const AlphaKCliqueResult ak = MaxAlphaKClique(graph, options);
    if (!ak.clique.empty()) {
      EXPECT_TRUE(IsAlphaKClique(graph, ak.clique, options.alpha, options.k))
          << "seed=" << seed;
    }
    ExpectFaultVerdict(ak_exec, ak.timed_out, ak.interrupt_reason, seed);
  }
}

// MBC_FAULT_INJECT arms every context created in the process; malformed
// values are ignored. Exercised via the programmatic API elsewhere; here
// only the env parsing contract is pinned down for a fresh process-wide
// spec (the env var is parsed once, so this test only checks the default).
TEST(FaultInjectionTest, UnsetEnvLeavesContextsDisarmed) {
  ExecutionContext exec;
  EXPECT_FALSE(exec.fault_injection_armed());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/core/work_steal.h"

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(WorkStealDequeTest, OwnerPopIsLifo) {
  WorkStealingDeque<int> deque;
  for (int i = 0; i < 10; ++i) deque.Push(i);
  for (int i = 9; i >= 0; --i) {
    int out = -1;
    ASSERT_TRUE(deque.Pop(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(deque.Pop(&out));
}

TEST(WorkStealDequeTest, StealIsFifo) {
  WorkStealingDeque<int> deque;
  for (int i = 0; i < 10; ++i) deque.Push(i);
  for (int i = 0; i < 10; ++i) {
    int out = -1;
    ASSERT_TRUE(deque.Steal(&out));
    EXPECT_EQ(out, i);
  }
  int out = -1;
  EXPECT_FALSE(deque.Steal(&out));
}

TEST(WorkStealDequeTest, GrowsPastInitialCapacityWithoutLoss) {
  WorkStealingDeque<int> deque(/*initial_capacity=*/4);
  const int n = 1000;
  for (int i = 0; i < n; ++i) deque.Push(i);
  EXPECT_GE(deque.capacity(), static_cast<size_t>(n));
  EXPECT_EQ(deque.SizeApprox(), static_cast<size_t>(n));
  // Mixed drain: steal half from the top, pop half from the bottom.
  std::vector<int> seen;
  seen.reserve(n);
  for (int i = 0; i < n / 2; ++i) {
    int out = -1;
    ASSERT_TRUE(deque.Steal(&out));
    seen.push_back(out);
  }
  int out = -1;
  while (deque.Pop(&out)) seen.push_back(out);
  std::sort(seen.begin(), seen.end());
  std::vector<int> expected(n);
  std::iota(expected.begin(), expected.end(), 0);
  EXPECT_EQ(seen, expected);
}

TEST(WorkStealDequeTest, InterleavedPushPopKeepsBalance) {
  WorkStealingDeque<int> deque(4);
  int next = 0;
  int popped = 0;
  for (int round = 0; round < 100; ++round) {
    for (int i = 0; i < 3; ++i) deque.Push(next++);
    int out = -1;
    if (deque.Pop(&out)) ++popped;
    if (deque.Pop(&out)) ++popped;
  }
  EXPECT_EQ(deque.SizeApprox(), static_cast<size_t>(next - popped));
}

// Every pushed item is consumed exactly once, split arbitrarily between
// the owner (popping) and concurrent thieves. The TSan CI leg runs this
// to certify the deque's memory orderings.
TEST(WorkStealStressTest, OwnerAndThievesPartitionTheItems) {
  constexpr int kItems = 20000;
  constexpr int kThieves = 3;
  WorkStealingDeque<int> deque(8);
  std::atomic<bool> done{false};
  std::atomic<uint64_t> stolen_sum{0};
  std::atomic<uint64_t> stolen_count{0};

  std::vector<std::thread> thieves;
  thieves.reserve(kThieves);
  for (int t = 0; t < kThieves; ++t) {
    thieves.emplace_back([&deque, &done, &stolen_sum, &stolen_count] {
      int out = -1;
      while (!done.load(std::memory_order_acquire)) {
        if (deque.Steal(&out)) {
          stolen_sum.fetch_add(static_cast<uint64_t>(out),
                               std::memory_order_relaxed);
          stolen_count.fetch_add(1, std::memory_order_relaxed);
        } else {
          std::this_thread::yield();
        }
      }
      // Final drain so nothing is stranded when the owner finishes first.
      while (deque.Steal(&out)) {
        stolen_sum.fetch_add(static_cast<uint64_t>(out),
                             std::memory_order_relaxed);
        stolen_count.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  uint64_t owner_sum = 0;
  uint64_t owner_count = 0;
  for (int i = 0; i < kItems; ++i) {
    deque.Push(i);
    if ((i & 3) == 0) {
      int out = -1;
      if (deque.Pop(&out)) {
        owner_sum += static_cast<uint64_t>(out);
        ++owner_count;
      }
    }
  }
  int out = -1;
  while (deque.Pop(&out)) {
    owner_sum += static_cast<uint64_t>(out);
    ++owner_count;
  }
  done.store(true, std::memory_order_release);
  for (std::thread& thief : thieves) thief.join();

  EXPECT_EQ(owner_count + stolen_count.load(),
            static_cast<uint64_t>(kItems));
  const uint64_t want_sum =
      static_cast<uint64_t>(kItems) * (kItems - 1) / 2;
  EXPECT_EQ(owner_sum + stolen_sum.load(), want_sum);
}

// Owner keeps producing while thieves chase — exercises ring growth racing
// concurrent steals (the retired-ring path).
TEST(WorkStealStressTest, GrowthUnderConcurrentSteals) {
  constexpr int kRounds = 50;
  constexpr int kBurst = 400;
  WorkStealingDeque<int> deque(2);  // tiny: forces many grows
  std::atomic<bool> done{false};
  std::atomic<uint64_t> consumed{0};

  std::thread thief([&deque, &done, &consumed] {
    int out = -1;
    while (!done.load(std::memory_order_acquire)) {
      if (deque.Steal(&out)) {
        consumed.fetch_add(1, std::memory_order_relaxed);
      }
    }
    while (deque.Steal(&out)) consumed.fetch_add(1, std::memory_order_relaxed);
  });

  uint64_t owner_consumed = 0;
  int next = 0;
  for (int round = 0; round < kRounds; ++round) {
    for (int i = 0; i < kBurst; ++i) deque.Push(next++);
    int out = -1;
    for (int i = 0; i < kBurst / 2; ++i) {
      if (deque.Pop(&out)) ++owner_consumed;
    }
  }
  int out = -1;
  while (deque.Pop(&out)) ++owner_consumed;
  done.store(true, std::memory_order_release);
  thief.join();

  EXPECT_EQ(owner_consumed + consumed.load(), static_cast<uint64_t>(next));
}

}  // namespace
}  // namespace mbc

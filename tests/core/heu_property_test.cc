// Copyright 2026 The balanced-clique Authors.
//
// Property harness for the heuristic tier (MbcHeuristicSearch): every
// answer is a valid balanced clique, never larger than the exact optimum,
// monotone non-decreasing in local-search iterations for a fixed seed,
// and byte-deterministic per seed regardless of the calling context
// (repeated calls, or four threads racing the same query).
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/mbc_heu.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

TEST(HeuPropertyTest, AlwaysValidAndNeverExceedsExactOptimum) {
  size_t graphs_checked = 0;
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    const SignedGraph graph = RandomSignedGraph(40, 220, 0.4, seed);
    for (uint32_t tau : {0u, 1u, 2u, 3u}) {
      const MbcHeuResult heu = MbcHeuristicSearch(graph, tau);
      if (!heu.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, heu.clique))
            << "seed=" << seed << " tau=" << tau;
        EXPECT_TRUE(heu.clique.SatisfiesThreshold(tau));
      }
      const MbcStarResult exact = MaxBalancedCliqueStar(graph, tau);
      EXPECT_LE(heu.clique.size(), exact.clique.size())
          << "seed=" << seed << " tau=" << tau;
      ++graphs_checked;
    }
  }
  EXPECT_GE(graphs_checked, 100u);
}

TEST(HeuPropertyTest, MonotoneInLocalSearchIterations) {
  // With a fixed seed the move stream of a shorter run is a prefix of a
  // longer one, and every accepted move keeps size >= before: the final
  // size can only grow with the iteration budget.
  for (uint64_t seed : {1ull, 7ull, 23ull}) {
    const SignedGraph graph = RandomSignedGraph(80, 600, 0.45, seed * 11);
    for (uint32_t tau : {1u, 2u}) {
      size_t previous = 0;
      for (uint32_t iterations : {0u, 4u, 12u, 24u, 48u}) {
        MbcHeuOptions options;
        options.seed = seed;
        options.local_search_iterations = iterations;
        const MbcHeuResult result =
            MbcHeuristicSearch(graph, tau, options);
        EXPECT_GE(result.clique.size(), previous)
            << "seed=" << seed << " tau=" << tau
            << " iterations=" << iterations;
        previous = result.clique.size();
      }
    }
  }
}

TEST(HeuPropertyTest, LocalSearchImprovesOverPureGreedyOnSomeGraph) {
  // The harness is only meaningful if local search actually moves the
  // needle somewhere: at least one (graph, tau) in this sweep must see a
  // strictly better clique with iterations on than off.
  bool improved = false;
  for (uint64_t seed = 1; seed <= 20 && !improved; ++seed) {
    const SignedGraph graph = RandomSignedGraph(100, 900, 0.45, seed);
    MbcHeuOptions off;
    off.local_search_iterations = 0;
    MbcHeuOptions on;
    on.local_search_iterations = 48;
    improved = MbcHeuristicSearch(graph, 1, on).clique.size() >
               MbcHeuristicSearch(graph, 1, off).clique.size();
  }
  EXPECT_TRUE(improved);
}

TEST(HeuPropertyTest, ByteDeterministicPerSeedAcrossThreads) {
  const SignedGraph graph = RandomSignedGraph(120, 900, 0.4, 99);
  for (uint64_t seed : {0ull, 42ull}) {
    MbcHeuOptions options;
    options.seed = seed;
    const MbcHeuResult reference = MbcHeuristicSearch(graph, 2, options);
    // Repeated sequential calls.
    const MbcHeuResult again = MbcHeuristicSearch(graph, 2, options);
    EXPECT_EQ(again.clique, reference.clique) << "seed=" << seed;
    EXPECT_EQ(again.stats.ls_iterations, reference.stats.ls_iterations);
    // Four threads racing the same query must all get the same bytes —
    // the solver owns all its state, so the calling context is invisible.
    std::vector<BalancedClique> results(4);
    std::vector<std::thread> threads;
    threads.reserve(results.size());
    for (size_t t = 0; t < results.size(); ++t) {
      threads.emplace_back([&, t] {
        results[t] = MbcHeuristicSearch(graph, 2, options).clique;
      });
    }
    for (std::thread& thread : threads) thread.join();
    for (const BalancedClique& clique : results) {
      EXPECT_EQ(clique, reference.clique) << "seed=" << seed;
    }
  }
}

TEST(HeuPropertyTest, DifferentSeedsStillValidOnPlantedFamily) {
  CommunityGraphOptions options;
  options.num_vertices = 400;
  options.num_edges = 4000;
  options.negative_ratio = 0.35;
  options.seed = 17;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  const SignedGraph graph = PlantBalancedCliques(base, {{6, 7}}, 53);
  for (uint64_t seed = 0; seed < 8; ++seed) {
    MbcHeuOptions heu_options;
    heu_options.seed = seed;
    const MbcHeuResult result = MbcHeuristicSearch(graph, 3, heu_options);
    ASSERT_FALSE(result.clique.empty()) << "seed=" << seed;
    EXPECT_TRUE(IsBalancedClique(graph, result.clique));
    EXPECT_TRUE(result.clique.SatisfiesThreshold(3));
  }
}

}  // namespace
}  // namespace mbc

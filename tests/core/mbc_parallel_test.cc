// Copyright 2026 The balanced-clique Authors.
#include "src/core/mbc_parallel.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

TEST(ParallelMbcTest, PaperFigure2Example) {
  ParallelMbcOptions options;
  options.num_threads = 4;
  const ParallelMbcResult result =
      ParallelMaxBalancedCliqueStar(Figure2Graph(), 2, options);
  EXPECT_EQ(result.clique.size(), 6u);
  EXPECT_TRUE(IsBalancedClique(Figure2Graph(), result.clique));
}

TEST(ParallelMbcTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.45, seed);
    for (uint32_t tau : {0u, 1u, 2u}) {
      ParallelMbcOptions options;
      options.num_threads = 3;
      const ParallelMbcResult result =
          ParallelMaxBalancedCliqueStar(graph, tau, options);
      EXPECT_EQ(result.clique.size(),
                BruteForceMaxBalancedClique(graph, tau).size())
          << "seed=" << seed << " tau=" << tau;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, result.clique));
        EXPECT_TRUE(result.clique.SatisfiesThreshold(tau));
      }
    }
  }
}

TEST(ParallelMbcTest, MatchesSequentialOnMediumGraphs) {
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const SignedGraph base = RandomSignedGraph(1500, 9000, 0.4, seed);
    const SignedGraph graph =
        PlantBalancedCliques(base, {{4, 6}}, seed + 100);
    const size_t sequential = MaxBalancedCliqueStar(graph, 2).clique.size();
    for (uint32_t threads : {1u, 2u, 8u}) {
      ParallelMbcOptions options;
      options.num_threads = threads;
      const ParallelMbcResult result =
          ParallelMaxBalancedCliqueStar(graph, 2, options);
      EXPECT_EQ(result.clique.size(), sequential)
          << "seed=" << seed << " threads=" << threads;
      EXPECT_TRUE(IsBalancedClique(graph, result.clique));
    }
  }
}

TEST(ParallelMbcTest, RepeatedRunsAreSizeStable) {
  const SignedGraph base = RandomSignedGraph(1000, 7000, 0.45, 77);
  const SignedGraph graph = PlantBalancedCliques(base, {{5, 5}}, 7);
  ParallelMbcOptions options;
  options.num_threads = 8;
  const size_t first =
      ParallelMaxBalancedCliqueStar(graph, 3, options).clique.size();
  for (int run = 0; run < 5; ++run) {
    EXPECT_EQ(ParallelMaxBalancedCliqueStar(graph, 3, options).clique.size(),
              first);
  }
}

TEST(ParallelMbcTest, EmptyGraphAndDefaults) {
  const ParallelMbcResult result =
      ParallelMaxBalancedCliqueStar(SignedGraph(), 0);
  EXPECT_TRUE(result.clique.empty());
  // Even when the reduced graph is empty the preamble ran on the calling
  // thread, so the reported thread count is 1, never 0.
  EXPECT_EQ(result.threads_used, 1u);
}

TEST(ParallelMbcTest, ThreadsUsedUniformAcrossDegenerateAndPoolPaths) {
  // Regression: the degenerate/empty-work path and the worker-pool path
  // once computed threads_used differently and could disagree. Both now
  // share one clamp: min(requested, max(1, work vertices)).
  const SignedGraph tiny = testing_util::RandomSignedGraph(6, 12, 0.5, 3);
  ParallelMbcOptions options;
  options.num_threads = 64;
  const ParallelMbcResult pool =
      ParallelMaxBalancedCliqueStar(tiny, 0, options);
  EXPECT_GE(pool.threads_used, 1u);
  EXPECT_LE(pool.threads_used, 6u);

  // tau high enough that vertex reduction empties the graph: same clamp,
  // so exactly 1, matching the empty-input case below.
  const ParallelMbcResult reduced_empty =
      ParallelMaxBalancedCliqueStar(tiny, 4, options);
  EXPECT_EQ(reduced_empty.threads_used, 1u);
  const ParallelMbcResult empty =
      ParallelMaxBalancedCliqueStar(SignedGraph(), 4, options);
  EXPECT_EQ(empty.threads_used, 1u);

  options.num_threads = 1;
  EXPECT_EQ(ParallelMaxBalancedCliqueStar(tiny, 0, options).threads_used,
            1u);
}

TEST(ParallelMbcTest, WithoutHeuristicStillExact) {
  const SignedGraph graph = RandomSignedGraph(18, 70, 0.45, 31);
  ParallelMbcOptions options;
  options.num_threads = 4;
  options.run_heuristic = false;
  EXPECT_EQ(ParallelMaxBalancedCliqueStar(graph, 2, options).clique.size(),
            BruteForceMaxBalancedClique(graph, 2).size());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Failure-injection tests for the execution governor's wall-clock path:
// expired budgets must degrade gracefully (valid partial results, flags
// set), never crash or return invalid cliques. All interrupt trips here
// are deterministic: ExecutionContext::Checkpoint() probes on its very
// first call, so a zero deadline fires before any search work happens.
#include <gtest/gtest.h>

#include "src/common/execution.h"
#include "src/core/mbc_star.h"
#include "src/core/reductions.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "src/gmbc/gmbc.h"
#include "src/pf/pf_star.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

TEST(TimeLimitTest, MbcStarZeroBudgetStillReturnsValidClique) {
  const SignedGraph base = RandomSignedGraph(800, 6000, 0.4, 3);
  const SignedGraph graph = PlantBalancedCliques(base, {{5, 6}}, 1);
  MbcStarOptions options;
  options.time_limit_seconds = 0.0;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, options);
  // The heuristic runs before the budget check, so a clique is returned.
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kDeadline);
}

TEST(TimeLimitTest, MbcStarGenerousBudgetIsExact) {
  const SignedGraph graph = testing_util::Figure2Graph();
  MbcStarOptions options;
  options.time_limit_seconds = 1e6;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, options);
  EXPECT_FALSE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kNone);
  EXPECT_EQ(result.clique.size(), 6u);
}

TEST(TimeLimitTest, EdgeReductionZeroBudgetReturnsInput) {
  const SignedGraph graph = RandomSignedGraph(2000, 30000, 0.45, 5);
  ExecutionContext exec(Deadline::After(0.0));
  const SignedGraph reduced = EdgeReduction(graph, 3, &exec);
  // The pre-loop probe trips, and a partial round is discarded wholesale.
  EXPECT_EQ(reduced.NumEdges(), graph.NumEdges());
  EXPECT_TRUE(exec.Interrupted());
}

TEST(TimeLimitTest, EdgeReductionPartialIsSupersetOfFull) {
  const SignedGraph graph = RandomSignedGraph(120, 900, 0.45, 9);
  const SignedGraph full = EdgeReduction(graph, 3);
  ExecutionContext exec(Deadline::After(0.0));
  const SignedGraph partial = EdgeReduction(graph, 3, &exec);
  // Every edge surviving the full reduction also survives the partial one
  // (partial = a prefix of the removal rounds).
  full.ForEachEdge([&partial](VertexId u, VertexId v, Sign sign) {
    EXPECT_EQ(partial.EdgeSign(u, v), sign);
  });
  EXPECT_GE(partial.NumEdges(), full.NumEdges());
}

TEST(TimeLimitTest, PfStarZeroBudgetReturnsHeuristicLowerBound) {
  const SignedGraph base = RandomSignedGraph(600, 4000, 0.4, 7);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 2);
  PfStarOptions options;
  options.time_limit_seconds = 0.0;
  const PfStarResult result = PolarizationFactorStar(graph, options);
  // The result is a valid lower bound with a valid witness.
  EXPECT_TRUE(IsBalancedClique(graph, result.witness));
  EXPECT_EQ(result.witness.MinSide(), result.beta);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kDeadline);
  const PfStarResult exact = PolarizationFactorStar(graph);
  EXPECT_LE(result.beta, exact.beta);
}

TEST(TimeLimitTest, GmbcStarZeroBudgetKeepsInvariants) {
  const SignedGraph base = RandomSignedGraph(500, 3500, 0.4, 11);
  const SignedGraph graph = PlantBalancedCliques(base, {{3, 4}}, 5);
  GeneralizedMbcOptions options;
  options.time_limit_seconds = 0.0;
  const GeneralizedMbcResult result = GeneralizedMbcStar(graph, options);
  ASSERT_EQ(result.cliques.size(), static_cast<size_t>(result.beta) + 1);
  for (uint32_t tau = 0; tau <= result.beta; ++tau) {
    EXPECT_TRUE(IsBalancedClique(graph, result.cliques[tau]));
    EXPECT_TRUE(result.cliques[tau].SatisfiesThreshold(tau));
  }
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.interrupt_reason, InterruptReason::kDeadline);
}

TEST(TimeLimitTest, ExpiredBudgetSetsFlagOnHardInstance) {
  const SignedGraph graph = RandomSignedGraph(3000, 60000, 0.45, 13);
  MbcStarOptions options;
  options.time_limit_seconds = 0.0;
  options.run_heuristic = false;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 1, options);
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kDeadline);
}

TEST(TimeLimitTest, SharedContextDeadlineIsObservedBySolver) {
  // A caller-owned context with an already-expired deadline must win over
  // (and not be clobbered by) the legacy time_limit_seconds option.
  const SignedGraph graph = RandomSignedGraph(400, 3000, 0.4, 17);
  ExecutionContext exec(Deadline::After(0.0));
  MbcStarOptions options;
  options.exec = &exec;
  options.time_limit_seconds = 1e6;  // ignored: exec takes precedence
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 1, options);
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kDeadline);
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
}

}  // namespace
}  // namespace mbc

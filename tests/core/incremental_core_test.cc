// Copyright 2026 The balanced-clique Authors.
//
// Differential tests for DynamicCoreTracker: every insert/remove must
// leave the tracker's core numbers identical to a from-scratch degeneracy
// re-peel of the materialized graph.
#include "src/core/incremental_core.h"

#include <map>
#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "src/graph/cores.h"
#include "src/graph/signed_graph.h"
#include "src/graph/signed_graph_builder.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using EdgeMap = std::map<std::pair<VertexId, VertexId>, Sign>;

SignedGraph Materialize(VertexId n, const EdgeMap& edges) {
  SignedGraphBuilder builder(n);
  for (const auto& [key, sign] : edges) {
    builder.AddEdge(key.first, key.second, sign);
  }
  return std::move(builder).Build();
}

void ExpectCoresMatchRepeel(const DynamicCoreTracker& tracker, VertexId n,
                            const EdgeMap& edges) {
  const DegeneracyResult want = DegeneracyDecompose(Materialize(n, edges));
  ASSERT_EQ(tracker.cores().size(), want.core_number.size());
  for (VertexId v = 0; v < n; ++v) {
    ASSERT_EQ(tracker.core(v), want.core_number[v]) << "core of " << v;
  }
  EXPECT_EQ(tracker.degeneracy(), want.degeneracy);
}

TEST(DynamicCoreTrackerTest, InsertGrowsTriangleCore) {
  EdgeMap edges = {{{0, 1}, Sign::kPositive}, {{1, 2}, Sign::kNegative}};
  SignedGraph base = Materialize(4, edges);
  DynamicCoreTracker tracker(base);
  EXPECT_EQ(tracker.core(0), 1u);
  EXPECT_EQ(tracker.degeneracy(), 1u);

  // Closing the triangle lifts all three vertices to core 2.
  const auto stats = tracker.InsertEdge(0, 2);
  edges[{0, 2}] = Sign::kPositive;
  EXPECT_EQ(stats.affected, 3u);
  ExpectCoresMatchRepeel(tracker, 4, edges);
  EXPECT_EQ(tracker.core(3), 0u);  // isolated vertex untouched
}

TEST(DynamicCoreTrackerTest, RemoveCascadesDemotions) {
  // A 4-clique: every vertex at core 3. Removing one edge drops all four
  // to core 2 (the two endpoints lose a neighbor; the others cascade).
  EdgeMap edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) edges[{u, v}] = Sign::kPositive;
  }
  DynamicCoreTracker tracker(Materialize(4, edges));
  EXPECT_EQ(tracker.degeneracy(), 3u);

  tracker.RemoveEdge(0, 1);
  edges.erase({0, 1});
  ExpectCoresMatchRepeel(tracker, 4, edges);
  EXPECT_EQ(tracker.degeneracy(), 2u);
}

TEST(DynamicCoreTrackerTest, BoundedTraversalSkipsHigherCores) {
  // A 4-clique (core 3) plus a pendant path. Inserting an edge inside the
  // path must not visit the clique: the subcore traversal is bounded to
  // the min-core region.
  EdgeMap edges;
  for (VertexId u = 0; u < 4; ++u) {
    for (VertexId v = u + 1; v < 4; ++v) edges[{u, v}] = Sign::kPositive;
  }
  edges[{3, 4}] = Sign::kPositive;
  edges[{4, 5}] = Sign::kPositive;
  DynamicCoreTracker tracker(Materialize(7, edges));

  const auto stats = tracker.InsertEdge(5, 6);
  edges[{5, 6}] = Sign::kPositive;
  ExpectCoresMatchRepeel(tracker, 7, edges);
  // Visited vertices are limited to the core-1 subcore, far below n.
  EXPECT_LE(stats.visited, 4u);
}

TEST(DynamicCoreTrackerTest, RandomizedDifferentialAgainstRepeel) {
  const VertexId n = 48;
  SignedGraph base = testing_util::RandomSignedGraph(n, 140, 0.3, 11);
  EdgeMap edges;
  for (VertexId u = 0; u < n; ++u) {
    for (const VertexId v : base.PositiveNeighbors(u)) {
      if (u < v) edges[{u, v}] = Sign::kPositive;
    }
    for (const VertexId v : base.NegativeNeighbors(u)) {
      if (u < v) edges[{u, v}] = Sign::kNegative;
    }
  }
  // Rebuild from the map so the tracker and the oracle share one base.
  DynamicCoreTracker tracker(Materialize(n, edges));

  uint64_t rng = 0x2545f4914f6cdd1dull;
  const auto next = [&rng]() {
    rng ^= rng << 13;
    rng ^= rng >> 7;
    rng ^= rng << 17;
    return rng;
  };
  int checked = 0;
  for (int op = 0; op < 400; ++op) {
    VertexId u = static_cast<VertexId>(next() % n);
    VertexId v = static_cast<VertexId>(next() % n);
    if (u == v) continue;
    if (u > v) std::swap(u, v);
    const auto it = edges.find({u, v});
    if (it == edges.end()) {
      tracker.InsertEdge(u, v);
      edges[{u, v}] = Sign::kPositive;
    } else {
      tracker.RemoveEdge(u, v);
      edges.erase(it);
    }
    ExpectCoresMatchRepeel(tracker, n, edges);
    ++checked;
    if (::testing::Test::HasFatalFailure()) break;
  }
  EXPECT_GT(checked, 300);
}

TEST(DynamicCoreTrackerTest, ChurnReturningToStartRestoresInitialCores) {
  EdgeMap edges = {{{0, 1}, Sign::kPositive},
                   {{1, 2}, Sign::kPositive},
                   {{2, 0}, Sign::kNegative},
                   {{2, 3}, Sign::kPositive}};
  DynamicCoreTracker tracker(Materialize(5, edges));
  const std::vector<uint32_t> initial = tracker.cores();

  tracker.InsertEdge(3, 4);
  tracker.InsertEdge(0, 3);
  tracker.RemoveEdge(0, 3);
  tracker.RemoveEdge(3, 4);
  EXPECT_EQ(tracker.cores(), initial);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/core/mbc_star.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::Figure3Graph;
using testing_util::FromText;
using testing_util::RandomSignedGraph;

TEST(MbcStarTest, PaperFigure2Example) {
  const SignedGraph graph = Figure2Graph();
  // "Both C = {v1..v4} and C* = {v3..v8} are balanced cliques satisfying
  //  τ = 2, while C* is the largest one."
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2);
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
  EXPECT_EQ(result.clique.size(), 6u);
  EXPECT_EQ(result.clique.AllVertices(),
            (std::vector<VertexId>{2, 3, 4, 5, 6, 7}));
}

TEST(MbcStarTest, PaperFigure3Example) {
  const SignedGraph graph = Figure3Graph();
  // "The maximum balanced clique size is 3 for τ = 0, and is 2 for τ = 1."
  EXPECT_EQ(MaxBalancedCliqueStar(graph, 0).clique.size(), 3u);
  EXPECT_EQ(MaxBalancedCliqueStar(graph, 1).clique.size(), 2u);
  EXPECT_TRUE(MaxBalancedCliqueStar(graph, 2).clique.empty());
}

TEST(MbcStarTest, EmptyAndTinyGraphs) {
  EXPECT_TRUE(MaxBalancedCliqueStar(SignedGraph(), 0).clique.empty());
  SignedGraphBuilder one(1);
  const SignedGraph single = std::move(one).Build();
  EXPECT_EQ(MaxBalancedCliqueStar(single, 0).clique.size(), 1u);
  EXPECT_TRUE(MaxBalancedCliqueStar(single, 1).clique.empty());
}

TEST(MbcStarTest, AllPositiveCliqueAtTauZero) {
  const SignedGraph graph = FromText("0 1 1\n1 2 1\n0 2 1\n2 3 1\n");
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 0);
  EXPECT_EQ(result.clique.size(), 3u);
  EXPECT_EQ(result.clique.MinSide(), 0u);
}

TEST(MbcStarTest, InfeasibleThresholdReturnsEmpty) {
  const SignedGraph graph = Figure2Graph();
  EXPECT_TRUE(MaxBalancedCliqueStar(graph, 4).clique.empty());
}

TEST(MbcStarTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.45, seed);
    for (uint32_t tau : {0u, 1u, 2u, 3u}) {
      const BalancedClique expected = BruteForceMaxBalancedClique(graph, tau);
      const MbcStarResult result = MaxBalancedCliqueStar(graph, tau);
      EXPECT_EQ(result.clique.size(), expected.size())
          << "seed=" << seed << " tau=" << tau;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, result.clique));
        EXPECT_TRUE(result.clique.SatisfiesThreshold(tau));
      }
    }
  }
}

TEST(MbcStarTest, RecoversPlantedClique) {
  const SignedGraph base = RandomSignedGraph(2000, 10000, 0.35, 9);
  const SignedGraph graph = PlantBalancedCliques(base, {{8, 11}}, 13);
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 3);
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
  EXPECT_GE(result.clique.size(), 19u);
  EXPECT_GE(result.clique.MinSide(), 3u);
}

TEST(MbcStarTest, InitialCliqueActsAsIncumbent) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique incumbent;
  incumbent.left = {0, 1};
  incumbent.right = {2, 3};
  MbcStarOptions options;
  options.initial_clique = &incumbent;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, options);
  EXPECT_EQ(result.clique.size(), 6u);  // still finds the better one
}

TEST(MbcStarTest, InitialCliqueReturnedWhenOptimal) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique incumbent;
  incumbent.left = {2, 3, 4};
  incumbent.right = {5, 6, 7};
  MbcStarOptions options;
  options.initial_clique = &incumbent;
  options.run_heuristic = false;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, options);
  EXPECT_EQ(result.clique.size(), 6u);
}

TEST(MbcStarTest, ExistenceOnlyFindsSomeValidClique) {
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.45, seed);
    for (uint32_t tau : {1u, 2u}) {
      MbcStarOptions options;
      options.existence_only = true;
      const MbcStarResult fast = MaxBalancedCliqueStar(graph, tau, options);
      const BalancedClique expected = BruteForceMaxBalancedClique(graph, tau);
      EXPECT_EQ(fast.clique.empty(), expected.empty())
          << "seed=" << seed << " tau=" << tau;
      if (!fast.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, fast.clique));
        EXPECT_TRUE(fast.clique.SatisfiesThreshold(tau));
      }
    }
  }
}

TEST(MbcStarTest, EdgeReductionVariantAgrees) {
  for (uint64_t seed = 21; seed <= 26; ++seed) {
    const SignedGraph graph = RandomSignedGraph(20, 90, 0.4, seed);
    MbcStarOptions with_er;
    with_er.apply_edge_reduction = true;
    EXPECT_EQ(MaxBalancedCliqueStar(graph, 2, with_er).clique.size(),
              MaxBalancedCliqueStar(graph, 2).clique.size())
        << "seed=" << seed;
  }
}

TEST(MbcStarTest, StatsArePopulated) {
  // Uniform degrees so the heuristic anchors inside the planted clique.
  CommunityGraphOptions options;
  options.num_vertices = 500;
  options.num_edges = 3000;
  options.negative_ratio = 0.4;
  options.powerlaw_alpha = 0.0;
  options.seed = 33;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 5}}, 3);
  // Without the heuristic seed the search must build dichromatic
  // networks; with it, everything may be pruned (num_networks_built == 0
  // is the desired outcome on heuristic-optimal instances).
  MbcStarOptions no_heu;
  no_heu.run_heuristic = false;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, no_heu);
  EXPECT_GT(result.stats.num_networks_built, 0u);
  EXPECT_GE(result.stats.search_seconds, 0.0);

  // On the Figure 2 graph the greedy seed is the optimum itself (the
  // heuristic-size column of the paper's Table IV).
  const MbcStarResult figure2 = MaxBalancedCliqueStar(Figure2Graph(), 2);
  EXPECT_EQ(figure2.stats.heuristic_size, 6u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/core/mdc_solver.h"

#include <atomic>
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace mbc {
namespace {

// A dichromatic graph where vertex 0 (L) joins an (L={0,1}, R={2,3})
// 4-clique, and there is a bigger clique {4,5,6} not containing 0.
DichromaticGraph SmallInstance() {
  DichromaticGraph graph(7);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kLeft);
  graph.SetSide(2, Side::kRight);
  graph.SetSide(3, Side::kRight);
  graph.SetSide(4, Side::kLeft);
  graph.SetSide(5, Side::kRight);
  graph.SetSide(6, Side::kRight);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) graph.AddEdge(a, b);
  }
  graph.AddEdge(4, 5);
  graph.AddEdge(4, 6);
  graph.AddEdge(5, 6);
  return graph;
}

Bitset CandidatesFor(const DichromaticGraph& graph, uint32_t seed_vertex) {
  Bitset cand = graph.AdjacencyOf(seed_vertex);
  return cand;
}

TEST(MdcSolverTest, FindsCliqueThroughSeed) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  const bool found =
      solver.Solve({0}, CandidatesFor(graph, 0), /*tau_l=*/0, /*tau_r=*/1,
                   /*lower_bound=*/0, &best);
  ASSERT_TRUE(found);
  EXPECT_EQ(best.size(), 4u);
  std::sort(best.begin(), best.end());
  EXPECT_EQ(best, (std::vector<uint32_t>{0, 1, 2, 3}));
}

TEST(MdcSolverTest, LowerBoundSuppressesEqualSolutions) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  EXPECT_FALSE(solver.Solve({0}, CandidatesFor(graph, 0), 0, 1,
                            /*lower_bound=*/4, &best));
}

TEST(MdcSolverTest, ThresholdsRuleOutInfeasible) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  // Need 3 R-vertices adjacent to 0; only 2 exist.
  EXPECT_FALSE(solver.Solve({0}, CandidatesFor(graph, 0), 0, 3, 0, &best));
}

TEST(MdcSolverTest, NegativeThresholdsActSatisfied) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  ASSERT_TRUE(solver.Solve({0}, CandidatesFor(graph, 0), -5, -5, 0, &best));
  EXPECT_EQ(best.size(), 4u);  // still maximizes
}

TEST(MdcSolverTest, ExistenceModeStopsEarly) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  ASSERT_TRUE(solver.Solve({0}, CandidatesFor(graph, 0), 0, 1, 1, &best,
                           /*existence_only=*/true));
  EXPECT_GE(best.size(), 2u);
  EXPECT_LE(solver.branches(), 10u);
}

TEST(MdcSolverTest, SeedOnlyCountsTowardSize) {
  DichromaticGraph graph(2);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kRight);
  graph.AddEdge(0, 1);
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  // Seed {0} alone already beats lower_bound 0 when thresholds permit.
  ASSERT_TRUE(solver.Solve({0}, Bitset(2), 0, 0, 0, &best));
  EXPECT_EQ(best, (std::vector<uint32_t>{0}));
}

DichromaticGraph CompleteDichromatic(uint32_t n) {
  DichromaticGraph graph(n);
  for (uint32_t v = 0; v < n; ++v) {
    graph.SetSide(v, v % 2 == 0 ? Side::kLeft : Side::kRight);
  }
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) graph.AddEdge(a, b);
  }
  return graph;
}

// A planted clique must be recognized by the clique shortcut in a single
// branch — the regression guard for the shortcut's pool-size gate.
TEST(MdcSolverTest, CliqueShortcutCollapsesPlantedClique) {
  const DichromaticGraph graph = CompleteDichromatic(6);
  MdcSolver solver(graph);
  std::vector<uint32_t> best;
  ASSERT_TRUE(solver.Solve({0}, graph.AdjacencyOf(0), -5, -5, 0, &best));
  EXPECT_EQ(best.size(), 6u);
  EXPECT_EQ(solver.branches(), 1u);
}

// Above the gate cap the shortcut's O(E) scan is deferred to the coloring
// bound; disabling the coloring bound makes the shortcut unconditional
// again. Either way the answer is the full clique.
TEST(MdcSolverTest, CliqueShortcutGateOnLargePools) {
  const DichromaticGraph graph = CompleteDichromatic(80);
  MdcSolver gated(graph);
  std::vector<uint32_t> best;
  ASSERT_TRUE(gated.Solve({0}, graph.AdjacencyOf(0), -5, -5, 0, &best));
  EXPECT_EQ(best.size(), 80u);
  EXPECT_GT(gated.branches(), 1u);

  MdcSolver unconditional(graph);
  unconditional.set_use_coloring_bound(false);
  best.clear();
  ASSERT_TRUE(
      unconditional.Solve({0}, graph.AdjacencyOf(0), -5, -5, 0, &best));
  EXPECT_EQ(best.size(), 80u);
  EXPECT_EQ(unconditional.branches(), 1u);
}

// Differential test against brute-force enumeration on random graphs.
TEST(MdcSolverTest, MatchesBruteForceRandomized) {
  Rng rng(321);
  for (int trial = 0; trial < 30; ++trial) {
    const uint32_t n = 10;
    DichromaticGraph graph(n);
    for (uint32_t v = 0; v < n; ++v) {
      graph.SetSide(v, rng.NextBernoulli(0.5) ? Side::kLeft : Side::kRight);
    }
    graph.SetSide(0, Side::kLeft);
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.NextBernoulli(0.5)) graph.AddEdge(a, b);
      }
    }
    const int32_t tau_l = static_cast<int32_t>(rng.NextBounded(3));
    const int32_t tau_r = static_cast<int32_t>(rng.NextBounded(3));

    // Brute force: all subsets containing 0 that form cliques and satisfy
    // per-side thresholds (seed 0 counts toward L).
    size_t brute_best = 0;
    for (uint32_t mask = 1; mask < (1u << n); ++mask) {
      if (!(mask & 1u)) continue;
      std::vector<uint32_t> set;
      for (uint32_t v = 0; v < n; ++v) {
        if (mask & (1u << v)) set.push_back(v);
      }
      bool clique = true;
      int left = 0;
      int right = 0;
      for (size_t i = 0; i < set.size() && clique; ++i) {
        (graph.IsLeft(set[i]) ? left : right) += 1;
        for (size_t j = i + 1; j < set.size(); ++j) {
          if (!graph.HasEdge(set[i], set[j])) {
            clique = false;
            break;
          }
        }
      }
      if (clique && left >= tau_l + 1 && right >= tau_r) {
        // tau_l + 1 accounts for the seed being an L vertex; see below.
        brute_best = std::max(brute_best, set.size());
      }
    }

    MdcSolver solver(graph);
    std::vector<uint32_t> best;
    const bool found =
        solver.Solve({0}, graph.AdjacencyOf(0), tau_l, tau_r, 0, &best);
    if (brute_best == 0) {
      EXPECT_FALSE(found) << "trial=" << trial;
    } else {
      ASSERT_TRUE(found) << "trial=" << trial;
      EXPECT_EQ(best.size(), brute_best) << "trial=" << trial;
      // Validate the clique and thresholds.
      int left = 0;
      int right = 0;
      for (size_t i = 0; i < best.size(); ++i) {
        (graph.IsLeft(best[i]) ? left : right) += 1;
        for (size_t j = i + 1; j < best.size(); ++j) {
          EXPECT_TRUE(graph.HasEdge(best[i], best[j]));
        }
      }
      EXPECT_GE(left, tau_l + 1);
      EXPECT_GE(right, tau_r);
    }
  }
}


// --- Shared-incumbent (tie-preserving) mode ---

TEST(MdcSolverSharedIncumbentTest, TiesAreOfferedNotSuppressed) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::atomic<size_t> bound{0};
  std::vector<std::vector<uint32_t>> offers;
  solver.SetSharedIncumbent(&bound, [&offers](
                                        const std::vector<uint32_t>& clique) {
    offers.push_back(clique);
  });
  std::vector<uint32_t> best;
  // Exact-mode Solve with lower_bound=4 suppresses the size-4 clique
  // (LowerBoundSuppressesEqualSolutions above); tie mode must offer it.
  solver.Solve({0}, CandidatesFor(graph, 0), 0, 1, /*lower_bound=*/4, &best);
  bool saw_tie = false;
  for (std::vector<uint32_t> offer : offers) {
    std::sort(offer.begin(), offer.end());
    saw_tie |= offer == std::vector<uint32_t>{0, 1, 2, 3};
  }
  EXPECT_TRUE(saw_tie);
}

TEST(MdcSolverSharedIncumbentTest, SharedBoundPrunesStrictlySmaller) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::atomic<size_t> bound{10};  // fleet already has a 10-clique
  std::vector<std::vector<uint32_t>> offers;
  solver.SetSharedIncumbent(&bound, [&offers](
                                        const std::vector<uint32_t>& clique) {
    offers.push_back(clique);
  });
  std::vector<uint32_t> best;
  solver.Solve({0}, CandidatesFor(graph, 0), 0, 1, /*lower_bound=*/0, &best);
  EXPECT_TRUE(offers.empty());
}

TEST(MdcSolverSharedIncumbentTest, ClearRestoresExactSemantics) {
  const DichromaticGraph graph = SmallInstance();
  MdcSolver solver(graph);
  std::atomic<size_t> bound{0};
  solver.SetSharedIncumbent(&bound, [](const std::vector<uint32_t>&) {});
  solver.ClearSharedIncumbent();
  std::vector<uint32_t> best;
  EXPECT_FALSE(solver.Solve({0}, CandidatesFor(graph, 0), 0, 1,
                            /*lower_bound=*/4, &best));
  EXPECT_TRUE(solver.Solve({0}, CandidatesFor(graph, 0), 0, 1,
                           /*lower_bound=*/3, &best));
  EXPECT_EQ(best.size(), 4u);
}

}  // namespace
}  // namespace mbc

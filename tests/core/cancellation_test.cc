// Copyright 2026 The balanced-clique Authors.
//
// Cooperative cancellation across threads: a worker pool running the
// parallel MBC* solver must observe a cancel requested from another
// thread, unwind promptly at the next checkpoints, and still hand back a
// valid (best-effort) clique tagged kCancelled.
#include <chrono>
#include <thread>

#include <gtest/gtest.h>

#include "src/common/execution.h"
#include "src/common/timer.h"
#include "src/core/mbc_heu.h"
#include "src/core/mbc_parallel.h"
#include "src/core/mbc_star.h"
#include "src/core/mbc_tolerant.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

TEST(CancellationTest, PreCancelledContextReturnsImmediately) {
  const SignedGraph base = RandomSignedGraph(500, 4000, 0.4, 19);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 7);
  ExecutionContext exec;
  exec.RequestCancel();
  ParallelMbcOptions options;
  options.num_threads = 4;
  options.exec = &exec;
  const ParallelMbcResult result =
      ParallelMaxBalancedCliqueStar(graph, 2, options);
  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.interrupt_reason, InterruptReason::kCancelled);
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
}

TEST(CancellationTest, CrossThreadCancelStopsParallelSolverPromptly) {
  // Dense enough that the full search takes several seconds (measured
  // ~7s at -O2), so a 75ms cancel always lands mid-search.
  const SignedGraph base = RandomSignedGraph(1000, 200000, 0.5, 23);
  const SignedGraph graph = PlantBalancedCliques(base, {{5, 5}}, 11);

  ExecutionContext exec;
  // Fallback so the test cannot hang if cancellation were broken (the
  // EXPECT on the reason below would still flag the bug as kDeadline).
  exec.set_deadline(Deadline::After(30.0));

  std::thread canceller([&exec] {
    std::this_thread::sleep_for(std::chrono::milliseconds(75));
    exec.RequestCancel();
  });

  Timer timer;
  ParallelMbcOptions options;
  options.num_threads = 4;
  options.exec = &exec;
  const ParallelMbcResult result =
      ParallelMaxBalancedCliqueStar(graph, 2, options);
  const double elapsed = timer.ElapsedSeconds();
  canceller.join();

  EXPECT_TRUE(result.timed_out);
  EXPECT_EQ(result.interrupt_reason, InterruptReason::kCancelled);
  // Prompt return: cancel fires at ~75ms; each worker stops at its next
  // checkpoint. Allow generous slack for slow CI machines while still
  // catching a solver that ignores the token and runs to completion
  // (~7s on this instance).
  EXPECT_LT(elapsed, 5.0);
  // The partial result is still a valid balanced clique.
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
}

TEST(CancellationTest, SequentialSolverSeesCancelFromOtherThread) {
  // Same hardness rationale as above: the uncancelled sequential search
  // takes >1s on this instance, so a 50ms cancel always interrupts it.
  const SignedGraph base = RandomSignedGraph(800, 120000, 0.5, 29);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 5}}, 13);

  ExecutionContext exec;
  exec.set_deadline(Deadline::After(30.0));
  std::thread canceller([&exec] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    exec.RequestCancel();
  });

  MbcStarOptions options;
  options.exec = &exec;
  const MbcStarResult result = MaxBalancedCliqueStar(graph, 2, options);
  canceller.join();

  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kCancelled);
}

TEST(CancellationTest, HeuristicTierObservesPreCancelledContext) {
  // The heuristic tier reports the cancel but still completes its first
  // greedy anchor (an O(m) pass): a brownout caller always gets at least
  // one valid lower-bound clique, never an empty hand.
  const SignedGraph base = RandomSignedGraph(500, 4000, 0.4, 19);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 7);
  ExecutionContext exec;
  exec.RequestCancel();
  MbcHeuOptions options;
  options.exec = &exec;
  const MbcHeuResult result = MbcHeuristicSearch(graph, 0, options);
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kCancelled);
  EXPECT_FALSE(result.clique.empty());
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
}

TEST(CancellationTest, HeuristicTierSeesCancelFromOtherThread) {
  const SignedGraph base = RandomSignedGraph(2000, 120000, 0.45, 31);
  const SignedGraph graph = PlantBalancedCliques(base, {{5, 5}}, 17);
  ExecutionContext exec;
  exec.set_deadline(Deadline::After(30.0));
  std::thread canceller([&exec] {
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
    exec.RequestCancel();
  });
  MbcHeuOptions options;
  options.exec = &exec;
  options.local_search_iterations = 100000;  // far beyond the cancel point
  const MbcHeuResult result = MbcHeuristicSearch(graph, 1, options);
  canceller.join();
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kCancelled);
  if (!result.clique.empty()) {
    EXPECT_TRUE(IsBalancedClique(graph, result.clique));
    EXPECT_TRUE(result.clique.SatisfiesThreshold(1));
  }
}

TEST(CancellationTest, TolerantSolverSeesCancelFromOtherThread) {
  // The tolerant branch-and-bound explores a much larger space than the
  // exact solver on the same instance (the budget admits frustrated
  // cliques), so a moderate graph is already slow enough to cancel.
  const SignedGraph base = RandomSignedGraph(600, 60000, 0.5, 37);
  const SignedGraph graph = PlantBalancedCliques(base, {{4, 4}}, 19);
  ExecutionContext exec;
  exec.set_deadline(Deadline::After(30.0));
  std::thread canceller([&exec] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    exec.RequestCancel();
  });
  MbcTolerantOptions options;
  options.exec = &exec;
  const MbcTolerantResult result =
      MaxTolerantBalancedClique(graph, 2, /*tolerance=*/2, options);
  canceller.join();
  EXPECT_TRUE(result.stats.timed_out);
  EXPECT_EQ(result.stats.interrupt_reason, InterruptReason::kCancelled);
  if (!result.clique.empty()) {
    const std::optional<uint32_t> frustration =
        CountFrustratedEdges(graph, result.clique);
    ASSERT_TRUE(frustration.has_value());
    EXPECT_EQ(*frustration, result.frustrated_edges);
    EXPECT_LE(*frustration, 2u);
  }
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// The ablation switches (core pruning, coloring bound, heuristic seed)
// must never change the answer — every configuration is exact.
#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

struct AblationCase {
  bool use_core;
  bool use_coloring;
  bool use_heuristic;
};

class AblationSweep : public ::testing::TestWithParam<AblationCase> {};

TEST_P(AblationSweep, StaysExactOnRandomGraphs) {
  const AblationCase& config = GetParam();
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(15, 60, 0.45, seed);
    for (uint32_t tau : {0u, 1u, 2u}) {
      MbcStarOptions options;
      options.use_core_pruning = config.use_core;
      options.use_coloring_bound = config.use_coloring;
      options.run_heuristic = config.use_heuristic;
      const MbcStarResult result =
          MaxBalancedCliqueStar(graph, tau, options);
      EXPECT_EQ(result.clique.size(),
                BruteForceMaxBalancedClique(graph, tau).size())
          << "seed=" << seed << " tau=" << tau;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, result.clique));
      }
    }
  }
}

TEST_P(AblationSweep, StaysExactOnPaperExamples) {
  const AblationCase& config = GetParam();
  MbcStarOptions options;
  options.use_core_pruning = config.use_core;
  options.use_coloring_bound = config.use_coloring;
  options.run_heuristic = config.use_heuristic;
  EXPECT_EQ(
      MaxBalancedCliqueStar(testing_util::Figure2Graph(), 2, options)
          .clique.size(),
      6u);
  EXPECT_EQ(
      MaxBalancedCliqueStar(testing_util::Figure3Graph(), 1, options)
          .clique.size(),
      2u);
}

INSTANTIATE_TEST_SUITE_P(
    AllConfigs, AblationSweep,
    ::testing::Values(AblationCase{false, true, true},
                      AblationCase{true, false, true},
                      AblationCase{false, false, true},
                      AblationCase{true, true, false},
                      AblationCase{false, false, false}),
    [](const ::testing::TestParamInfo<AblationCase>& param_info) {
      std::string name;
      name += param_info.param.use_core ? "core" : "nocore";
      name += param_info.param.use_coloring ? "Color" : "NoColor";
      name += param_info.param.use_heuristic ? "Heu" : "NoHeu";
      return name;
    });

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Warm-start regression harness: seeding the exact engines with the
// heuristic tier's incumbent must preserve the optimum, never explore
// more branch-and-bound nodes than a cold run, and leave the parallel
// engine's lex-min witness untouched.
#include <gtest/gtest.h>

#include "src/core/mbc_heu.h"
#include "src/core/mbc_parallel.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

SignedGraph PlantedFamilyGraph(uint64_t seed) {
  // Uniform degrees so the planted members dominate the degree anchors
  // and the heuristic reliably lands inside a plant (the same shape the
  // MbcHeuTest planted-clique test uses).
  CommunityGraphOptions options;
  options.num_vertices = 800;
  options.num_edges = 6000;
  options.negative_ratio = 0.35;
  options.powerlaw_alpha = 0.0;
  options.seed = seed;
  const SignedGraph base = GenerateCommunitySignedGraph(options);
  return PlantBalancedCliques(base, {{8, 9}, {6, 7}}, seed * 31 + 7);
}

TEST(WarmStartTest, NeverMoreBranchesAndSameOptimum) {
  // MBC* already runs the greedy anchor sweep internally, so warm start
  // only changes the picture when the local-search incumbent beats that
  // sweep. On this random family it does for some seeds (measured: e.g.
  // seed 5 tau 2 goes 79 -> 20 branches), which makes the aggregate
  // reduction strict while every individual instance stays <=.
  uint64_t total_cold = 0;
  uint64_t total_warm = 0;
  for (uint64_t seed = 1; seed <= 6; ++seed) {
    const SignedGraph graph = RandomSignedGraph(300, 6000, 0.45, seed);
    for (uint32_t tau : {2u, 3u}) {
      const BalancedClique heu = MbcHeuristicSearch(graph, tau).clique;
      const MbcStarResult cold = MaxBalancedCliqueStar(graph, tau);
      MbcStarOptions warm_options;
      if (!heu.empty() && heu.SatisfiesThreshold(tau)) {
        warm_options.initial_clique = &heu;
      }
      const MbcStarResult warm =
          MaxBalancedCliqueStar(graph, tau, warm_options);

      EXPECT_EQ(warm.clique.size(), cold.clique.size())
          << "seed=" << seed << " tau=" << tau;
      if (!warm.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, warm.clique));
      }
      // A better starting incumbent can only tighten the size bound, so
      // the warm run explores a subset of the cold run's nodes.
      EXPECT_LE(warm.stats.mdc_branches, cold.stats.mdc_branches)
          << "seed=" << seed << " tau=" << tau;
      total_cold += cold.stats.mdc_branches;
      total_warm += warm.stats.mdc_branches;
    }
  }
  ASSERT_GT(total_cold, 0u);
  // Across the family the reduction must be real, not just non-negative.
  EXPECT_LT(total_warm, total_cold);
}

TEST(WarmStartTest, ParallelWitnessIsWarmStartNeutral) {
  // The parallel engine publishes the lex-min maximum clique; seeding it
  // must not change the witness, only (possibly) the work done.
  for (uint64_t seed = 1; seed <= 4; ++seed) {
    const SignedGraph graph = RandomSignedGraph(200, 2400, 0.4, seed);
    const uint32_t tau = 2;
    const BalancedClique heu = MbcHeuristicSearch(graph, tau).clique;

    ParallelMbcOptions cold_options;
    cold_options.num_threads = 2;
    const ParallelMbcResult cold =
        ParallelMaxBalancedCliqueStar(graph, tau, cold_options);

    ParallelMbcOptions warm_options;
    warm_options.num_threads = 2;
    if (!heu.empty() && heu.SatisfiesThreshold(tau)) {
      warm_options.initial_clique = &heu;
    }
    const ParallelMbcResult warm =
        ParallelMaxBalancedCliqueStar(graph, tau, warm_options);

    EXPECT_EQ(warm.clique, cold.clique) << "seed=" << seed;
  }
}

TEST(WarmStartTest, SeedingWithTheOptimumItselfStillReturnsAnOptimum) {
  // Degenerate warm start: handing the engine an optimal incumbent must
  // not lose it (the engine may return the seed or another optimum of the
  // same size, never anything smaller).
  const SignedGraph graph = PlantedFamilyGraph(9);
  const uint32_t tau = 3;
  const MbcStarResult cold = MaxBalancedCliqueStar(graph, tau);
  ASSERT_FALSE(cold.clique.empty());
  MbcStarOptions options;
  options.initial_clique = &cold.clique;
  const MbcStarResult warm = MaxBalancedCliqueStar(graph, tau, options);
  EXPECT_EQ(warm.clique.size(), cold.clique.size());
  EXPECT_TRUE(IsBalancedClique(graph, warm.clique));
}

}  // namespace
}  // namespace mbc

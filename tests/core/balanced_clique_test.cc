// Copyright 2026 The balanced-clique Authors.
#include "src/core/balanced_clique.h"

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(BalancedCliqueTest, SizesAndEmptiness) {
  BalancedClique clique;
  EXPECT_TRUE(clique.empty());
  EXPECT_EQ(clique.size(), 0u);
  clique.left = {1, 2};
  clique.right = {3};
  EXPECT_FALSE(clique.empty());
  EXPECT_EQ(clique.size(), 3u);
  EXPECT_EQ(clique.MinSide(), 1u);
}

TEST(BalancedCliqueTest, SatisfiesThreshold) {
  BalancedClique clique;
  clique.left = {1, 2, 3};
  clique.right = {4, 5};
  EXPECT_TRUE(clique.SatisfiesThreshold(0));
  EXPECT_TRUE(clique.SatisfiesThreshold(2));
  EXPECT_FALSE(clique.SatisfiesThreshold(3));
}

TEST(BalancedCliqueTest, AllVerticesSortedUnion) {
  BalancedClique clique;
  clique.left = {5, 1};
  clique.right = {3};
  EXPECT_EQ(clique.AllVertices(), (std::vector<VertexId>{1, 3, 5}));
}

TEST(BalancedCliqueTest, CanonicalizeSortsAndOrients) {
  BalancedClique clique;
  clique.left = {9, 7};
  clique.right = {2, 4};
  clique.Canonicalize();
  EXPECT_EQ(clique.left, (std::vector<VertexId>{2, 4}));
  EXPECT_EQ(clique.right, (std::vector<VertexId>{7, 9}));
}

TEST(BalancedCliqueTest, CanonicalizeMovesEmptySideRight) {
  BalancedClique clique;
  clique.right = {3, 1};
  clique.Canonicalize();
  EXPECT_EQ(clique.left, (std::vector<VertexId>{1, 3}));
  EXPECT_TRUE(clique.right.empty());
}

TEST(BalancedCliqueTest, MapToOriginal) {
  BalancedClique clique;
  clique.left = {0, 2};
  clique.right = {1};
  const std::vector<VertexId> mapping = {10, 20, 5};
  clique.MapToOriginal(mapping);
  EXPECT_EQ(clique.left, (std::vector<VertexId>{5, 10}));
  EXPECT_EQ(clique.right, (std::vector<VertexId>{20}));
}

TEST(BalancedCliqueTest, ToStringShape) {
  BalancedClique clique;
  clique.left = {1, 2};
  clique.right = {3};
  EXPECT_EQ(clique.ToString(), "{1 2 | 3}");
  EXPECT_EQ(BalancedClique{}.ToString(), "{ | }");
}

TEST(BalancedCliqueTest, EqualityIsStructural) {
  BalancedClique a;
  a.left = {1};
  a.right = {2};
  BalancedClique b = a;
  EXPECT_EQ(a, b);
  b.right = {3};
  EXPECT_FALSE(a == b);
}

}  // namespace
}  // namespace mbc

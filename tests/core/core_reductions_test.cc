// Copyright 2026 The balanced-clique Authors.
#include "src/core/reductions.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::FromText;
using testing_util::RandomSignedGraph;

TEST(VertexReductionTest, TauZeroKeepsEverything) {
  const SignedGraph graph = Figure2Graph();
  const std::vector<uint8_t> alive = VertexReductionMask(graph, 0);
  EXPECT_EQ(std::count(alive.begin(), alive.end(), 1),
            static_cast<long>(graph.NumVertices()));
}

TEST(VertexReductionTest, DegreeThresholds) {
  // Vertex 0: d+=1, d-=1. τ=1 requires d+ >= 0, d- >= 1 -> survives.
  // τ=2 requires d+ >= 1 and d- >= 2 -> 0 has d-=1, removed.
  const SignedGraph graph = FromText("0 1 1\n0 2 -1\n1 2 -1\n1 3 1\n2 3 1\n");
  const std::vector<uint8_t> tau1 = VertexReductionMask(graph, 1);
  EXPECT_TRUE(tau1[0]);
  const std::vector<uint8_t> tau2 = VertexReductionMask(graph, 2);
  EXPECT_FALSE(tau2[0]);
}

TEST(VertexReductionTest, CascadingRemoval) {
  // Chain where removing the endpoint cascades down.
  const SignedGraph graph = Figure2Graph();
  // τ=3: every vertex needs d+ >= 2 and d- >= 3.
  const std::vector<uint8_t> alive = VertexReductionMask(graph, 3);
  // v1, v2 (ids 0, 1) have d+ = 1 -> removed. Their removal lowers the
  // negative degree of v3, v4 to 3 (from 5); the core {2..7} survives.
  EXPECT_FALSE(alive[0]);
  EXPECT_FALSE(alive[1]);
  for (VertexId v = 2; v <= 7; ++v) EXPECT_TRUE(alive[v]) << v;
}

TEST(VertexReductionTest, PreservesQualifyingCliques) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const SignedGraph graph = RandomSignedGraph(18, 70, 0.45, seed);
    for (uint32_t tau : {1u, 2u}) {
      const BalancedClique best = BruteForceMaxBalancedClique(graph, tau);
      if (best.empty()) continue;
      const std::vector<uint8_t> alive = VertexReductionMask(graph, tau);
      for (VertexId v : best.AllVertices()) {
        EXPECT_TRUE(alive[v]) << "seed=" << seed << " tau=" << tau;
      }
    }
  }
}

TEST(ApplyVertexReductionTest, MappingIsConsistent) {
  const SignedGraph graph = Figure2Graph();
  const ReducedSignedGraph reduced = ApplyVertexReduction(graph, 3);
  EXPECT_EQ(reduced.graph.NumVertices(), 6u);
  // Every edge of the reduced graph exists with the same sign in G.
  reduced.graph.ForEachEdge([&](VertexId u, VertexId v, Sign sign) {
    EXPECT_EQ(graph.EdgeSign(reduced.to_original[u], reduced.to_original[v]),
              sign);
  });
}

TEST(EdgeReductionTest, TauBelowTwoIsIdentity) {
  const SignedGraph graph = Figure2Graph();
  const SignedGraph reduced = EdgeReduction(graph, 1);
  EXPECT_EQ(reduced.NumEdges(), graph.NumEdges());
}

TEST(EdgeReductionTest, RemovesTriangleDeficientEdges) {
  // A single positive edge with no triangles cannot be in any τ=2 clique.
  const SignedGraph graph = FromText("0 1 1\n2 3 -1\n");
  const SignedGraph reduced = EdgeReduction(graph, 2);
  EXPECT_EQ(reduced.NumEdges(), 0u);
}

TEST(EdgeReductionTest, KeepsPerfectBalancedClique) {
  // Balanced clique with sides (2,2): every edge meets the τ=2 triangle
  // conditions exactly.
  const SignedGraph graph = FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n");
  const SignedGraph reduced = EdgeReduction(graph, 2);
  EXPECT_EQ(reduced.NumEdges(), 6u);
}

TEST(EdgeReductionTest, FixpointCascades) {
  // Balanced (2,2) clique plus a pendant positive edge 0-4 supported by
  // no triangles: removing it must not disturb the clique.
  const SignedGraph graph = FromText(
      "0 1 1\n2 3 1\n0 2 -1\n0 3 -1\n1 2 -1\n1 3 -1\n0 4 1\n");
  const SignedGraph reduced = EdgeReduction(graph, 2);
  EXPECT_EQ(reduced.NumEdges(), 6u);
  EXPECT_EQ(reduced.EdgeSign(0, 4), std::nullopt);
}

TEST(EdgeReductionTest, PreservesQualifyingCliquesRandomized) {
  for (uint64_t seed = 11; seed <= 15; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.45, seed);
    for (uint32_t tau : {2u, 3u}) {
      const BalancedClique best = BruteForceMaxBalancedClique(graph, tau);
      if (best.empty()) continue;
      const SignedGraph reduced = EdgeReduction(graph, tau);
      EXPECT_TRUE(IsBalancedClique(reduced, best))
          << "seed=" << seed << " tau=" << tau;
    }
  }
}

}  // namespace
}  // namespace mbc

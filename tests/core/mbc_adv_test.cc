// Copyright 2026 The balanced-clique Authors.
#include "src/core/mbc_adv.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::Figure3Graph;
using testing_util::RandomSignedGraph;

TEST(MbcAdvTest, PaperFigure2Example) {
  const MbcAdvResult result = MaxBalancedCliqueAdv(Figure2Graph(), 2);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.clique.size(), 6u);
  EXPECT_TRUE(IsBalancedClique(Figure2Graph(), result.clique));
}

TEST(MbcAdvTest, PaperFigure3Example) {
  EXPECT_EQ(MaxBalancedCliqueAdv(Figure3Graph(), 0).clique.size(), 3u);
  EXPECT_EQ(MaxBalancedCliqueAdv(Figure3Graph(), 1).clique.size(), 2u);
}

TEST(MbcAdvTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.45, seed);
    for (uint32_t tau : {0u, 1u, 2u, 3u}) {
      const BalancedClique expected = BruteForceMaxBalancedClique(graph, tau);
      const MbcAdvResult result = MaxBalancedCliqueAdv(graph, tau);
      EXPECT_FALSE(result.timed_out);
      EXPECT_EQ(result.clique.size(), expected.size())
          << "seed=" << seed << " tau=" << tau;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, result.clique));
        EXPECT_TRUE(result.clique.SatisfiesThreshold(tau));
      }
    }
  }
}

TEST(MbcAdvTest, ReportsNetworkAndBranchCounts) {
  const SignedGraph graph = RandomSignedGraph(200, 1200, 0.4, 5);
  const MbcAdvResult result = MaxBalancedCliqueAdv(graph, 1);
  EXPECT_GT(result.num_networks_built, 0u);
}

}  // namespace
}  // namespace mbc

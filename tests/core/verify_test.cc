// Copyright 2026 The balanced-clique Authors.
#include "src/core/verify.h"

#include <gtest/gtest.h>

#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;

TEST(VerifyTest, AcceptsPaperExampleClique) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique clique;
  clique.left = {0, 1};   // v1, v2
  clique.right = {2, 3};  // v3, v4
  EXPECT_TRUE(IsBalancedClique(graph, clique));
}

TEST(VerifyTest, AcceptsSwappedSides) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique clique;
  clique.left = {2, 3};
  clique.right = {0, 1};
  EXPECT_TRUE(IsBalancedClique(graph, clique));
}

TEST(VerifyTest, RejectsWrongSideAssignment) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique clique;
  clique.left = {0, 1, 2};  // v3 has negative edges to v1, v2
  clique.right = {3};
  EXPECT_FALSE(IsBalancedClique(graph, clique));
}

TEST(VerifyTest, RejectsNonClique) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique clique;
  clique.left = {0, 4};  // v1 and v5 are not adjacent
  clique.right = {};
  EXPECT_FALSE(IsBalancedClique(graph, clique));
}

TEST(VerifyTest, RejectsDuplicatesAndOutOfRange) {
  const SignedGraph graph = Figure2Graph();
  BalancedClique dup;
  dup.left = {0};
  dup.right = {0};
  EXPECT_FALSE(IsBalancedClique(graph, dup));
  BalancedClique oob;
  oob.left = {100};
  EXPECT_FALSE(IsBalancedClique(graph, oob));
}

TEST(VerifyTest, EmptyAndSingletonAreBalanced) {
  const SignedGraph graph = Figure2Graph();
  EXPECT_TRUE(IsBalancedClique(graph, BalancedClique{}));
  BalancedClique single;
  single.left = {5};
  EXPECT_TRUE(IsBalancedClique(graph, single));
}

TEST(SplitTest, RecoversUniqueSplit) {
  const SignedGraph graph = Figure2Graph();
  const std::vector<VertexId> set = {2, 3, 4, 5, 6, 7};
  const auto split = SplitIntoBalancedClique(graph, set);
  ASSERT_TRUE(split.has_value());
  EXPECT_EQ(split->size(), 6u);
  EXPECT_EQ(split->MinSide(), 3u);
  // Sides must be {2,3,4} and {5,6,7} (orientation canonicalized).
  EXPECT_EQ(split->left, (std::vector<VertexId>{2, 3, 4}));
  EXPECT_EQ(split->right, (std::vector<VertexId>{5, 6, 7}));
}

TEST(SplitTest, RejectsUnbalancedOrNonClique) {
  const SignedGraph graph = Figure2Graph();
  // {0, 1, 4}: v1-v5 not adjacent.
  EXPECT_FALSE(
      SplitIntoBalancedClique(graph, std::vector<VertexId>{0, 1, 4})
          .has_value());
}

TEST(SplitTest, DetectsSignInconsistency) {
  // Triangle with exactly one negative edge is a clique but unbalanced.
  const SignedGraph graph =
      testing_util::FromText("0 1 1\n1 2 1\n0 2 -1\n");
  EXPECT_FALSE(
      SplitIntoBalancedClique(graph, std::vector<VertexId>{0, 1, 2})
          .has_value());
}

TEST(SplitTest, AllNegativeTriangleIsUnbalanced) {
  const SignedGraph graph =
      testing_util::FromText("0 1 -1\n1 2 -1\n0 2 -1\n");
  EXPECT_FALSE(
      SplitIntoBalancedClique(graph, std::vector<VertexId>{0, 1, 2})
          .has_value());
}

TEST(SplitTest, EmptySetIsBalanced) {
  const SignedGraph graph = Figure2Graph();
  EXPECT_TRUE(SplitIntoBalancedClique(graph, {}).has_value());
}

}  // namespace
}  // namespace mbc

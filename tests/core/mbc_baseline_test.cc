// Copyright 2026 The balanced-clique Authors.
#include "src/core/mbc_baseline.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::Figure3Graph;
using testing_util::RandomSignedGraph;

TEST(MbcBaselineTest, PaperFigure2Example) {
  const MbcBaselineResult result =
      MaxBalancedCliqueBaseline(Figure2Graph(), 2);
  EXPECT_FALSE(result.timed_out);
  EXPECT_EQ(result.clique.size(), 6u);
}

TEST(MbcBaselineTest, PaperFigure3Example) {
  EXPECT_EQ(MaxBalancedCliqueBaseline(Figure3Graph(), 0).clique.size(), 3u);
  EXPECT_EQ(MaxBalancedCliqueBaseline(Figure3Graph(), 1).clique.size(), 2u);
}

TEST(MbcBaselineTest, MatchesBruteForceRandomized) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SignedGraph graph = RandomSignedGraph(15, 55, 0.45, seed);
    for (uint32_t tau : {0u, 1u, 2u, 3u}) {
      const BalancedClique expected = BruteForceMaxBalancedClique(graph, tau);
      const MbcBaselineResult result = MaxBalancedCliqueBaseline(graph, tau);
      EXPECT_FALSE(result.timed_out);
      EXPECT_EQ(result.clique.size(), expected.size())
          << "seed=" << seed << " tau=" << tau;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, result.clique));
      }
    }
  }
}

TEST(MbcBaselineTest, NoEdgeReductionVariantAgrees) {
  for (uint64_t seed = 4; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(15, 55, 0.45, seed);
    MbcBaselineOptions no_er;
    no_er.apply_edge_reduction = false;
    EXPECT_EQ(MaxBalancedCliqueBaseline(graph, 2, no_er).clique.size(),
              MaxBalancedCliqueBaseline(graph, 2).clique.size());
  }
}

TEST(MbcBaselineTest, TimeLimitProducesPartialResult) {
  const SignedGraph graph = RandomSignedGraph(300, 4000, 0.45, 2);
  MbcBaselineOptions options;
  options.time_limit_seconds = 0.0;  // expire immediately
  const MbcBaselineResult result =
      MaxBalancedCliqueBaseline(graph, 1, options);
  EXPECT_TRUE(result.timed_out);
  // Whatever was found must still be valid.
  EXPECT_TRUE(IsBalancedClique(graph, result.clique));
}

TEST(MbcBaselineTest, CountsRecursiveCalls) {
  const MbcBaselineResult result =
      MaxBalancedCliqueBaseline(Figure2Graph(), 2);
  EXPECT_GT(result.recursive_calls, 1u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Differential property tests for the arena MDC/DCC kernels against a
// pruning-free brute-force oracle (the pre-arena kernel they used to be
// compared with was removed after one release of baking). The oracle
// enumerates every clique of the instance by plain backtracking — no
// bounds, no orderings — so any bookkeeping bug in the arena kernels
// (incremental degrees, side counts, frame reuse) shows up as a wrong
// verdict or a wrong size.
//
// The whole suite is parameterized over the SIMD kernel tables supported
// by the host (scalar always; AVX2/AVX-512 where available): every
// differential property must hold under every ISA, and a dedicated
// cross-ISA test additionally asserts that the scalar and vector builds
// return byte-identical cliques with equal branch counts.
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"
#include "src/common/simd.h"
#include "src/core/brute_force.h"
#include "src/core/mbc_star.h"
#include "src/core/mdc_solver.h"
#include "src/core/verify.h"
#include "src/dichromatic/dichromatic_graph.h"
#include "src/pf/dcc_solver.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::RandomSignedGraph;

DichromaticGraph RandomDichromatic(uint32_t n, double density,
                                   uint64_t seed) {
  Rng rng(seed);
  DichromaticGraph graph(n);
  for (uint32_t v = 0; v < n; ++v) {
    graph.SetSide(v, rng.NextBernoulli(0.5) ? Side::kLeft : Side::kRight);
  }
  for (uint32_t a = 0; a < n; ++a) {
    for (uint32_t b = a + 1; b < n; ++b) {
      if (rng.NextBernoulli(density)) graph.AddEdge(a, b);
    }
  }
  return graph;
}

// Brute-force clique enumeration: visits every clique of the subgraph
// induced by `cands` (including the empty one), reporting its side
// populations. Plain backtracking, no pruning — the oracle shares no code
// with the kernels under test.
template <typename Visit>
void ForEachClique(const DichromaticGraph& graph,
                   const std::vector<uint32_t>& cands, uint32_t left,
                   uint32_t right, const Visit& visit) {
  visit(left, right);
  for (size_t i = 0; i < cands.size(); ++i) {
    const uint32_t v = cands[i];
    std::vector<uint32_t> next;
    for (size_t j = i + 1; j < cands.size(); ++j) {
      if (graph.HasEdge(v, cands[j])) next.push_back(cands[j]);
    }
    ForEachClique(graph, next,
                  left + (graph.IsLeft(v) ? 1u : 0u),
                  right + (graph.IsLeft(v) ? 0u : 1u), visit);
  }
}

std::vector<uint32_t> BitsetToVector(const Bitset& bits) {
  std::vector<uint32_t> out;
  bits.ForEach([&out](size_t v) { out.push_back(static_cast<uint32_t>(v)); });
  return out;
}

class MdcArenaDifferentialTest
    : public ::testing::TestWithParam<std::string> {
 protected:
  void SetUp() override { ASSERT_TRUE(simd::SetActive(GetParam())); }
  void TearDown() override { simd::SetActive("auto"); }
};

// End-to-end: MBC* (arena kernel) vs brute force over 200 seeded random
// signed graphs and τ ∈ {1, 2}.
TEST_P(MdcArenaDifferentialTest, MbcStarMatchesBruteForce) {
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const VertexId n = 10 + static_cast<VertexId>(seed % 7);
    const EdgeCount m = static_cast<EdgeCount>(n) * (2 + seed % 3);
    const double neg = 0.25 + 0.1 * static_cast<double>(seed % 4);
    const SignedGraph graph = RandomSignedGraph(n, m, neg, seed + 1);
    const uint32_t tau = 1 + static_cast<uint32_t>(seed % 2);

    const MbcStarResult result = MaxBalancedCliqueStar(graph, tau);
    const BalancedClique truth = BruteForceMaxBalancedClique(graph, tau);

    ASSERT_EQ(result.clique.size(), truth.size())
        << "arena kernel wrong size at seed " << seed;
    if (!result.clique.empty()) {
      ASSERT_TRUE(IsBalancedClique(graph, result.clique))
          << "invalid clique at seed " << seed;
      ASSERT_TRUE(result.clique.SatisfiesThreshold(tau))
          << "clique violates tau at seed " << seed;
    }
  }
}

// Kernel-level: MdcSolver vs the brute-force clique enumerator on random
// dichromatic networks, asserting identical verdicts and sizes.
TEST_P(MdcArenaDifferentialTest, MdcKernelMatchesBruteForce) {
  MdcSolver solver;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const uint32_t n = 8 + static_cast<uint32_t>(seed % 17);
    const double density = 0.15 + 0.05 * static_cast<double>(seed % 10);
    const DichromaticGraph graph = RandomDichromatic(n, density, seed + 17);
    const Bitset candidates = graph.AdjacencyOf(0);
    const int32_t tau_l = static_cast<int32_t>(seed % 3) - 1;
    const int32_t tau_r = static_cast<int32_t>((seed / 3) % 3);
    const size_t lower_bound = 1;

    // Oracle: the largest clique C' within the candidates (all adjacent to
    // the seed vertex 0 by construction) whose side populations meet the
    // thresholds and with |{0} ∪ C'| > lower_bound.
    size_t brute_best = 0;
    bool brute_found = false;
    ForEachClique(
        graph, BitsetToVector(candidates), 0, 0,
        [&](uint32_t left, uint32_t right) {
          if (tau_l > 0 && left < static_cast<uint32_t>(tau_l)) return;
          if (tau_r > 0 && right < static_cast<uint32_t>(tau_r)) return;
          const size_t total = 1 + left + right;
          if (total <= lower_bound) return;
          if (!brute_found || total > brute_best) {
            brute_found = true;
            brute_best = total;
          }
        });

    solver.Rebind(graph);
    std::vector<uint32_t> best;
    const bool found = solver.Solve({0}, candidates, tau_l, tau_r,
                                    lower_bound, &best);
    ASSERT_EQ(found, brute_found) << "verdicts differ at seed " << seed;
    if (found) {
      ASSERT_EQ(best.size(), brute_best) << "sizes differ at seed " << seed;
      // The solution must be a clique through the seed with valid quotas.
      int32_t left = 0;
      int32_t right = 0;
      for (size_t i = 0; i < best.size(); ++i) {
        if (best[i] != 0) (graph.IsLeft(best[i]) ? left : right) += 1;
        for (size_t j = i + 1; j < best.size(); ++j) {
          ASSERT_TRUE(graph.HasEdge(best[i], best[j]))
              << "solution not a clique at seed " << seed;
        }
      }
      if (tau_l > 0) {
        ASSERT_GE(left, tau_l) << "seed " << seed;
      }
      if (tau_r > 0) {
        ASSERT_GE(right, tau_r) << "seed " << seed;
      }
    }
  }
}

// DCC (existence checking): same brute-force differential for the
// polarization-factor kernel, including witness validity.
TEST_P(MdcArenaDifferentialTest, DccKernelMatchesBruteForce) {
  DccSolver solver;
  for (uint64_t seed = 0; seed < 200; ++seed) {
    const uint32_t n = 6 + static_cast<uint32_t>(seed % 15);
    const double density = 0.2 + 0.05 * static_cast<double>(seed % 8);
    const DichromaticGraph graph = RandomDichromatic(n, density, seed + 99);
    const int32_t tau_l = static_cast<int32_t>(seed % 3);
    const int32_t tau_r = static_cast<int32_t>((seed / 2) % 3);

    bool brute_found = false;
    ForEachClique(graph, BitsetToVector(graph.AllVertices()), 0, 0,
                  [&](uint32_t left, uint32_t right) {
                    brute_found =
                        brute_found ||
                        (left >= static_cast<uint32_t>(tau_l) &&
                         right >= static_cast<uint32_t>(tau_r));
                  });

    solver.Rebind(graph);
    std::vector<uint32_t> witness;
    const bool found =
        solver.Check(graph.AllVertices(), tau_l, tau_r, &witness);
    ASSERT_EQ(found, brute_found) << "verdicts differ at seed " << seed;
    if (found) {
      // The witness must be a dichromatic clique meeting the quotas.
      int32_t left = 0;
      int32_t right = 0;
      for (size_t i = 0; i < witness.size(); ++i) {
        (graph.IsLeft(witness[i]) ? left : right) += 1;
        for (size_t j = i + 1; j < witness.size(); ++j) {
          ASSERT_TRUE(graph.HasEdge(witness[i], witness[j]))
              << "witness not a clique at seed " << seed;
        }
      }
      ASSERT_GE(left, tau_l) << "left quota unmet at seed " << seed;
      ASSERT_GE(right, tau_r) << "right quota unmet at seed " << seed;
    }
  }
}

// Repeated Solve calls on one solver (the production calling convention)
// must behave identically to fresh solvers: the arena carries state
// between solves and must not leak any of it into the answers.
TEST_P(MdcArenaDifferentialTest, SolverReuseMatchesFreshSolver) {
  MdcSolver reused;
  for (uint64_t seed = 0; seed < 50; ++seed) {
    const uint32_t n = 10 + static_cast<uint32_t>(seed % 30);
    const DichromaticGraph graph = RandomDichromatic(n, 0.3, seed + 7);
    const Bitset candidates = graph.AdjacencyOf(0);

    reused.Rebind(graph);
    MdcSolver fresh(graph);
    std::vector<uint32_t> reused_best;
    std::vector<uint32_t> fresh_best;
    const bool reused_found = reused.Solve({0}, candidates, 0, 1, 1,
                                           &reused_best);
    const bool fresh_found = fresh.Solve({0}, candidates, 0, 1, 1,
                                         &fresh_best);
    ASSERT_EQ(reused_found, fresh_found) << "seed " << seed;
    ASSERT_EQ(reused.branches(), fresh.branches()) << "seed " << seed;
    if (reused_found) {
      ASSERT_EQ(reused_best.size(), fresh_best.size()) << "seed " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllIsas, MdcArenaDifferentialTest,
    ::testing::ValuesIn(simd::SupportedIsas()),
    [](const ::testing::TestParamInfo<std::string>& param_info) {
      return param_info.param;
    });

// Cross-ISA: the scalar build is the reference; every vector ISA must
// return the byte-identical clique (not just the same size — the same
// vertices in the same canonical order) with equal branch counts.
TEST(SimdCrossIsaTest, MbcStarByteIdenticalAcrossIsas) {
  const std::vector<std::string> isas = simd::SupportedIsas();
  for (uint64_t seed = 0; seed < 60; ++seed) {
    const VertexId n = 12 + static_cast<VertexId>(seed % 9);
    const EdgeCount m = static_cast<EdgeCount>(n) * (2 + seed % 4);
    const SignedGraph graph = RandomSignedGraph(n, m, 0.3, seed + 5);
    const uint32_t tau = 1 + static_cast<uint32_t>(seed % 2);

    ASSERT_TRUE(simd::SetActive("scalar"));
    const MbcStarResult reference = MaxBalancedCliqueStar(graph, tau);

    for (const std::string& isa : isas) {
      if (isa == "scalar") continue;
      ASSERT_TRUE(simd::SetActive(isa));
      const MbcStarResult vectored = MaxBalancedCliqueStar(graph, tau);
      ASSERT_EQ(vectored.clique.left, reference.clique.left)
          << isa << " diverged (left side) at seed " << seed;
      ASSERT_EQ(vectored.clique.right, reference.clique.right)
          << isa << " diverged (right side) at seed " << seed;
      ASSERT_EQ(vectored.stats.mdc_branches, reference.stats.mdc_branches)
          << isa << " explored a different search tree at seed " << seed;
    }
  }
  simd::SetActive("auto");
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
//
// Differential suite for the tolerance solver: the budgeted kernel against
// a subset+assignment brute-force oracle over hundreds of seeded small
// graphs, plus the k = 0 exactness contracts (both the delegated MBC* path
// and the forced general kernel).
#include "src/core/mbc_tolerant.h"

#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "src/graph/signed_graph_builder.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

/// Every witness must be a feasible tolerant clique: an underlying clique
/// whose stored split frustrates at most `tolerance` edges, sides ≥ τ.
void ExpectFeasible(const SignedGraph& graph, const MbcTolerantResult& result,
                    uint32_t tau, uint32_t tolerance) {
  if (result.clique.empty()) return;
  const std::optional<uint32_t> frustrated =
      CountFrustratedEdges(graph, result.clique);
  ASSERT_TRUE(frustrated.has_value())
      << "witness is not an underlying clique: " << result.clique.ToString();
  EXPECT_EQ(*frustrated, result.frustrated_edges);
  EXPECT_LE(*frustrated, tolerance);
  EXPECT_TRUE(result.clique.SatisfiesThreshold(tau));
}

TEST(TolerantDifferentialTest, MatchesOracleOnSeededSmallGraphs) {
  // ≥ 200 seeded graphs; every (graph, tau, k) cell checked for exact
  // optimality of the size and feasibility of the witness.
  int graphs_checked = 0;
  for (uint64_t seed = 1; seed <= 50; ++seed) {
    for (const auto& [n, m, neg] :
         {std::tuple<VertexId, EdgeCount, double>{10, 24, 0.5},
          {12, 38, 0.45},
          {14, 52, 0.35},
          {15, 70, 0.55}}) {
      const SignedGraph graph = RandomSignedGraph(n, m, neg, seed * 97 + n);
      ++graphs_checked;
      for (uint32_t tau : {0u, 1u, 2u}) {
        for (uint32_t k : {0u, 1u, 2u, 3u}) {
          const size_t oracle = BruteForceMaxTolerantCliqueSize(graph, tau, k);
          // Both the production path (MBC*-seeded incumbent) and the
          // bare kernel must match the oracle.
          for (bool seeded : {true, false}) {
            MbcTolerantOptions options;
            options.delegate_exact = false;  // exercise the budgeted kernel
            options.seed_exact = seeded;
            const MbcTolerantResult result =
                MaxTolerantBalancedClique(graph, tau, k, options);
            ASSERT_EQ(result.clique.size(), oracle)
                << "seed=" << seed << " n=" << n << " tau=" << tau
                << " k=" << k << " seeded=" << seeded;
            ExpectFeasible(graph, result, tau, k);
          }
        }
      }
    }
  }
  ASSERT_GE(graphs_checked, 200);
}

TEST(TolerantDifferentialTest, ZeroToleranceDelegatesByteIdenticalToStar) {
  for (uint64_t seed = 1; seed <= 12; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.45, seed);
    for (uint32_t tau : {0u, 1u, 2u}) {
      const MbcStarResult star = MaxBalancedCliqueStar(graph, tau);
      const MbcTolerantResult tolerant =
          MaxTolerantBalancedClique(graph, tau, /*tolerance=*/0);
      // Same witness, field by field — not merely the same size.
      EXPECT_EQ(tolerant.clique, star.clique)
          << "seed=" << seed << " tau=" << tau;
      EXPECT_EQ(tolerant.frustrated_edges, 0u);
      EXPECT_EQ(tolerant.stats.branches, star.stats.mdc_branches);
    }
  }
}

TEST(TolerantDifferentialTest, ZeroToleranceKernelMatchesExactSize) {
  // The general kernel at k = 0 must agree with the exact solver on size
  // and produce a genuinely balanced (0 frustrated edges) witness.
  for (uint64_t seed = 30; seed <= 40; ++seed) {
    const SignedGraph graph = RandomSignedGraph(15, 55, 0.4, seed);
    for (uint32_t tau : {1u, 2u}) {
      MbcTolerantOptions options;
      options.delegate_exact = false;
      const MbcTolerantResult result =
          MaxTolerantBalancedClique(graph, tau, 0, options);
      EXPECT_EQ(result.clique.size(),
                BruteForceMaxBalancedClique(graph, tau).size())
          << "seed=" << seed << " tau=" << tau;
      if (!result.clique.empty()) {
        EXPECT_TRUE(IsBalancedClique(graph, result.clique));
      }
    }
  }
}

TEST(TolerantDifferentialTest, BudgetIsMonotone) {
  // A larger budget never shrinks the optimum.
  for (uint64_t seed = 60; seed <= 75; ++seed) {
    const SignedGraph graph = RandomSignedGraph(14, 48, 0.5, seed);
    size_t previous = 0;
    for (uint32_t k = 0; k <= 4; ++k) {
      MbcTolerantOptions options;
      options.delegate_exact = false;
      const MbcTolerantResult result =
          MaxTolerantBalancedClique(graph, 1, k, options);
      EXPECT_GE(result.clique.size(), previous) << "seed=" << seed
                                                << " k=" << k;
      previous = result.clique.size();
      ExpectFeasible(graph, result, 1, k);
    }
  }
}

TEST(TolerantDifferentialTest, DenseOneSidedCoreStaysTractable) {
  // A complete all-positive core is the adversarial shape for the
  // budgeted kernel: one side extends for free but the other can never
  // reach τ, and without the per-side τ knapsacks the search enumerates
  // subsets of the positive clique (10^8+ branches on a ~90-vertex core
  // before the bounds landed). The planted balanced clique is the only
  // feasible optimum; the bounds must find it in a handful of branches.
  const SignedGraph base = RandomSignedGraph(60, 1770, 0.0, 7);
  const SignedGraph graph = PlantBalancedCliques(base, {{5, 5}}, 11);
  MbcTolerantOptions options;
  options.delegate_exact = false;
  const MbcTolerantResult result =
      MaxTolerantBalancedClique(graph, /*tau=*/5, /*tolerance=*/2, options);
  EXPECT_GE(result.clique.size(), 10u);
  ExpectFeasible(graph, result, 5, 2);
  EXPECT_LT(result.stats.branches, 100000u);

  // The bare kernel (no exact seed) must stay tractable too — the
  // per-side knapsacks do not depend on the incumbent.
  MbcTolerantOptions bare = options;
  bare.seed_exact = false;
  const MbcTolerantResult from_scratch =
      MaxTolerantBalancedClique(graph, 5, 2, bare);
  EXPECT_EQ(from_scratch.clique.size(), result.clique.size());
  ExpectFeasible(graph, from_scratch, 5, 2);
  EXPECT_LT(from_scratch.stats.branches, 200000u);
}

TEST(TolerantDifferentialTest, WarmStartKeepsOptimalityAndPrunesMore) {
  for (uint64_t seed = 80; seed <= 90; ++seed) {
    const SignedGraph graph = RandomSignedGraph(15, 58, 0.45, seed);
    MbcTolerantOptions cold;
    cold.delegate_exact = false;
    const MbcTolerantResult cold_result =
        MaxTolerantBalancedClique(graph, 1, 2, cold);
    if (cold_result.clique.empty()) continue;

    MbcTolerantOptions warm = cold;
    warm.initial_clique = &cold_result.clique;
    const MbcTolerantResult warm_result =
        MaxTolerantBalancedClique(graph, 1, 2, warm);
    EXPECT_EQ(warm_result.clique.size(), cold_result.clique.size());
    EXPECT_LE(warm_result.stats.branches, cold_result.stats.branches)
        << "seed=" << seed;
    ExpectFeasible(graph, warm_result, 1, 2);
  }
}

TEST(TolerantDifferentialTest, PaperExampleGainsFromTolerance) {
  // Figure 2's exact optimum at τ=2 is 6; a small budget can only help.
  const SignedGraph graph = Figure2Graph();
  const MbcTolerantResult exact = MaxTolerantBalancedClique(graph, 2, 0);
  EXPECT_EQ(exact.clique.size(), 6u);
  MbcTolerantOptions options;
  options.delegate_exact = false;
  const MbcTolerantResult relaxed =
      MaxTolerantBalancedClique(graph, 2, 2, options);
  EXPECT_GE(relaxed.clique.size(), 6u);
  ExpectFeasible(graph, relaxed, 2, 2);
}

TEST(TolerantDifferentialTest, EmptyAndTinyGraphs) {
  const SignedGraph empty = SignedGraphBuilder(0).Build();
  EXPECT_TRUE(MaxTolerantBalancedClique(empty, 1, 2).clique.empty());

  SignedGraphBuilder builder(2);
  builder.AddEdge(0, 1, Sign::kNegative);
  const SignedGraph pair = std::move(builder).Build();
  MbcTolerantOptions options;
  options.delegate_exact = false;
  // One negative edge: τ=1 feasible with budget 0 ({0 | 1}).
  const MbcTolerantResult split = MaxTolerantBalancedClique(pair, 1, 0,
                                                            options);
  EXPECT_EQ(split.clique.size(), 2u);
  EXPECT_EQ(split.frustrated_edges, 0u);
  // τ=0: both on one side costs one frustrated edge; budget 1 allows the
  // pair, budget 0 also allows it via the split assignment.
  const MbcTolerantResult same = MaxTolerantBalancedClique(pair, 0, 1,
                                                           options);
  EXPECT_EQ(same.clique.size(), 2u);
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/pf/dcc_solver.h"

#include <atomic>
#include <algorithm>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/random.h"

namespace mbc {
namespace {

DichromaticGraph TwoByTwoCliquePlusNoise() {
  // (L={0,1}, R={2,3}) complete; pendant R vertex 4 attached to 0.
  DichromaticGraph graph(5);
  graph.SetSide(0, Side::kLeft);
  graph.SetSide(1, Side::kLeft);
  graph.SetSide(2, Side::kRight);
  graph.SetSide(3, Side::kRight);
  graph.SetSide(4, Side::kRight);
  for (uint32_t a = 0; a < 4; ++a) {
    for (uint32_t b = a + 1; b < 4; ++b) graph.AddEdge(a, b);
  }
  graph.AddEdge(0, 4);
  return graph;
}

TEST(DccSolverTest, FindsFeasibleClique) {
  const DichromaticGraph graph = TwoByTwoCliquePlusNoise();
  DccSolver solver(graph);
  std::vector<uint32_t> witness;
  EXPECT_TRUE(solver.Check(graph.AllVertices(), 2, 2, &witness));
  // The witness is a clique with exactly 2 L and 2 R vertices.
  int left = 0;
  for (size_t i = 0; i < witness.size(); ++i) {
    left += graph.IsLeft(witness[i]);
    for (size_t j = i + 1; j < witness.size(); ++j) {
      EXPECT_TRUE(graph.HasEdge(witness[i], witness[j]));
    }
  }
  EXPECT_EQ(witness.size(), 4u);
  EXPECT_EQ(left, 2);
}

TEST(DccSolverTest, RejectsInfeasibleThresholds) {
  const DichromaticGraph graph = TwoByTwoCliquePlusNoise();
  DccSolver solver(graph);
  EXPECT_FALSE(solver.Check(graph.AllVertices(), 3, 2));
  EXPECT_FALSE(solver.Check(graph.AllVertices(), 2, 3));
}

TEST(DccSolverTest, ZeroThresholdsTriviallyTrue) {
  DichromaticGraph empty(3);
  DccSolver solver(empty);
  std::vector<uint32_t> witness{99};
  EXPECT_TRUE(solver.Check(empty.AllVertices(), 0, 0, &witness));
  EXPECT_TRUE(witness.empty());
}

TEST(DccSolverTest, NegativeThresholdsClamp) {
  DichromaticGraph empty(2);
  DccSolver solver(empty);
  EXPECT_TRUE(solver.Check(empty.AllVertices(), -1, -2));
}

TEST(DccSolverTest, RespectsCandidateSubset) {
  const DichromaticGraph graph = TwoByTwoCliquePlusNoise();
  DccSolver solver(graph);
  Bitset no_right(5);
  no_right.Set(0);
  no_right.Set(1);
  EXPECT_FALSE(solver.Check(no_right, 1, 1));
  EXPECT_TRUE(solver.Check(no_right, 2, 0));
}

// Differential test against subset enumeration.
TEST(DccSolverTest, MatchesBruteForceRandomized) {
  Rng rng(777);
  for (int trial = 0; trial < 40; ++trial) {
    const uint32_t n = 10;
    DichromaticGraph graph(n);
    for (uint32_t v = 0; v < n; ++v) {
      graph.SetSide(v, rng.NextBernoulli(0.5) ? Side::kLeft : Side::kRight);
    }
    for (uint32_t a = 0; a < n; ++a) {
      for (uint32_t b = a + 1; b < n; ++b) {
        if (rng.NextBernoulli(0.45)) graph.AddEdge(a, b);
      }
    }
    const uint32_t tau_l = static_cast<uint32_t>(rng.NextBounded(4));
    const uint32_t tau_r = static_cast<uint32_t>(rng.NextBounded(4));

    bool brute = false;
    for (uint32_t mask = 0; mask < (1u << n) && !brute; ++mask) {
      std::vector<uint32_t> set;
      for (uint32_t v = 0; v < n; ++v) {
        if (mask & (1u << v)) set.push_back(v);
      }
      bool clique = true;
      uint32_t left = 0;
      uint32_t right = 0;
      for (size_t i = 0; i < set.size() && clique; ++i) {
        (graph.IsLeft(set[i]) ? left : right) += 1;
        for (size_t j = i + 1; j < set.size(); ++j) {
          if (!graph.HasEdge(set[i], set[j])) {
            clique = false;
            break;
          }
        }
      }
      brute = clique && left >= tau_l && right >= tau_r;
    }

    DccSolver solver(graph);
    EXPECT_EQ(solver.Check(graph.AllVertices(),
                           static_cast<int32_t>(tau_l),
                           static_cast<int32_t>(tau_r)),
              brute)
        << "trial=" << trial << " tau_l=" << tau_l << " tau_r=" << tau_r;
  }
}


TEST(DccSolverSharedStopTest, RaisedFlagUnwindsConservatively) {
  const DichromaticGraph graph = TwoByTwoCliquePlusNoise();
  DccSolver solver(graph);
  std::atomic<bool> stop{true};
  solver.SetSharedStop(&stop);
  // Feasible instance, but the fleet has already settled the question:
  // Check unwinds at its first node, answering false *without proof*.
  EXPECT_FALSE(solver.Check(graph.AllVertices(), 2, 2));
  EXPECT_TRUE(solver.shared_stopped());

  // Lowering the flag restores normal operation, and the per-Check reset
  // clears the sticky report.
  stop.store(false);
  EXPECT_TRUE(solver.Check(graph.AllVertices(), 2, 2));
  EXPECT_FALSE(solver.shared_stopped());

  solver.SetSharedStop(nullptr);
  EXPECT_TRUE(solver.Check(graph.AllVertices(), 2, 2));
  EXPECT_FALSE(solver.shared_stopped());
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/pf/pdecompose.h"

#include <algorithm>

#include <gtest/gtest.h>

#include "src/dichromatic/network_builder.h"
#include "src/pf/dcc_solver.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::RandomSignedGraph;

TEST(PDecomposeTest, Figure2PolarCores) {
  const SignedGraph graph = Figure2Graph();
  const PolarDecomposition result = PDecompose(graph);
  // v1, v2 (ids 0, 1): d+ = 1, d- = 2 -> key = min(2, 2) = 2.
  EXPECT_EQ(result.polar_core_number[0], 2u);
  EXPECT_EQ(result.polar_core_number[1], 2u);
  // The 6-vertex kernel {v3..v8}: after removing v1, v2 each vertex has
  // d+ = 2, d- = 3 -> key = min(3, 3) = 3.
  for (VertexId v = 2; v <= 7; ++v) {
    EXPECT_EQ(result.polar_core_number[v], 3u) << v;
  }
  EXPECT_EQ(result.max_polar_core, 3u);
}

TEST(PDecomposeTest, OrderRankConsistent) {
  const SignedGraph graph = RandomSignedGraph(150, 700, 0.4, 5);
  const PolarDecomposition result = PDecompose(graph);
  ASSERT_EQ(result.order.size(), graph.NumVertices());
  for (uint32_t i = 0; i < result.order.size(); ++i) {
    EXPECT_EQ(result.rank[result.order[i]], i);
  }
  // pn is non-decreasing along the order.
  for (uint32_t i = 1; i < result.order.size(); ++i) {
    EXPECT_GE(result.polar_core_number[result.order[i]],
              result.polar_core_number[result.order[i - 1]]);
  }
}

// Cross-check pn against the k-polar-core mask: pn(v) >= k iff v is in the
// k-polar-core.
TEST(PDecomposeTest, AgreesWithPolarCoreMask) {
  const SignedGraph graph = RandomSignedGraph(120, 600, 0.45, 9);
  const PolarDecomposition result = PDecompose(graph);
  for (uint32_t k = 0; k <= result.max_polar_core + 1; ++k) {
    const std::vector<uint8_t> mask = PolarCoreMask(graph, k);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      EXPECT_EQ(mask[v] != 0, result.polar_core_number[v] >= k)
          << "k=" << k << " v=" << v;
    }
  }
}

// Every vertex of the k-polar-core satisfies min{d+ + 1, d-} >= k inside it.
TEST(PolarCoreMaskTest, DefinitionInvariant) {
  const SignedGraph graph = RandomSignedGraph(150, 900, 0.5, 13);
  for (uint32_t k : {1u, 2u, 3u}) {
    const std::vector<uint8_t> mask = PolarCoreMask(graph, k);
    for (VertexId v = 0; v < graph.NumVertices(); ++v) {
      if (!mask[v]) continue;
      uint32_t pos = 0;
      uint32_t neg = 0;
      for (VertexId u : graph.PositiveNeighbors(v)) pos += mask[u];
      for (VertexId u : graph.NegativeNeighbors(v)) neg += mask[u];
      EXPECT_GE(std::min(pos + 1, neg), k);
    }
  }
}

// Lemma 5: pn(u) >= γ(g_u) for any ordering. We compute γ(g_u) by probing
// DCC with increasing τ on the full-neighborhood network.
TEST(PDecomposeTest, Lemma5PolarCoreNumberBoundsGamma) {
  const SignedGraph graph = RandomSignedGraph(40, 200, 0.45, 21);
  const PolarDecomposition decomposition = PDecompose(graph);
  DichromaticNetworkBuilder builder(graph);
  for (VertexId u = 0; u < graph.NumVertices(); u += 3) {
    const DichromaticNetwork net =
        builder.Build(u, decomposition.rank.data());
    uint32_t gamma = 0;
    DccSolver solver(net.graph);
    Bitset candidates = net.graph.AdjacencyOf(0);
    while (true) {
      // A dichromatic clique with τ = gamma + 1 per side, through u.
      if (!solver.Check(candidates, static_cast<int32_t>(gamma),
                        static_cast<int32_t>(gamma) + 1)) {
        break;
      }
      ++gamma;
    }
    EXPECT_GE(decomposition.polar_core_number[u], gamma) << "u=" << u;
  }
}

TEST(PDecomposeTest, EmptyGraph) {
  const PolarDecomposition result = PDecompose(SignedGraph());
  EXPECT_TRUE(result.order.empty());
  EXPECT_EQ(result.max_polar_core, 0u);
}

}  // namespace
}  // namespace mbc

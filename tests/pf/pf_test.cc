// Copyright 2026 The balanced-clique Authors.
//
// Polarization-factor algorithms: PF-E, PF-BS, PF* and PF*-DOrder must all
// equal the brute-force β(G).
#include <gtest/gtest.h>

#include "src/core/brute_force.h"
#include "src/core/verify.h"
#include "src/datasets/generators.h"
#include "src/pf/pf_bs.h"
#include "src/pf/pf_e.h"
#include "src/pf/pf_star.h"
#include "tests/test_util.h"

namespace mbc {
namespace {

using testing_util::Figure2Graph;
using testing_util::Figure3Graph;
using testing_util::RandomSignedGraph;

TEST(PfStarTest, PaperFigure2Example) {
  // "The polarization factor of the signed graph in Figure 2 is 3."
  const PfStarResult result = PolarizationFactorStar(Figure2Graph());
  EXPECT_EQ(result.beta, 3u);
  EXPECT_TRUE(IsBalancedClique(Figure2Graph(), result.witness));
  EXPECT_EQ(result.witness.MinSide(), 3u);
}

TEST(PfStarTest, Figure3Example) {
  EXPECT_EQ(PolarizationFactorStar(Figure3Graph()).beta, 1u);
}

TEST(PfStarTest, AllPositiveGraphHasBetaZero) {
  const SignedGraph graph =
      testing_util::FromText("0 1 1\n1 2 1\n0 2 1\n");
  EXPECT_EQ(PolarizationFactorStar(graph).beta, 0u);
}

TEST(PfStarTest, EmptyGraph) {
  EXPECT_EQ(PolarizationFactorStar(SignedGraph()).beta, 0u);
}

TEST(PfStarTest, WitnessAlwaysValid) {
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    const SignedGraph graph = RandomSignedGraph(60, 350, 0.45, seed);
    const PfStarResult result = PolarizationFactorStar(graph);
    EXPECT_TRUE(IsBalancedClique(graph, result.witness));
    EXPECT_EQ(result.witness.MinSide(), result.beta);
  }
}

// A loose heuristic seed must not break PF* (the per-network DCC loop).
TEST(PfStarTest, CorrectWithoutHeuristicSeed) {
  for (uint64_t seed = 1; seed <= 8; ++seed) {
    const SignedGraph graph = RandomSignedGraph(16, 60, 0.5, seed);
    PfStarOptions options;
    options.run_heuristic = false;
    EXPECT_EQ(PolarizationFactorStar(graph, options).beta,
              BruteForcePolarizationFactor(graph))
        << "seed=" << seed;
  }
}

TEST(PfStarTest, RecoversPlantedBeta) {
  const SignedGraph base = RandomSignedGraph(2000, 9000, 0.35, 3);
  const SignedGraph graph = PlantBalancedCliques(base, {{7, 9}}, 11);
  EXPECT_GE(PolarizationFactorStar(graph).beta, 7u);
}

struct PfCase {
  uint64_t seed;
  double neg_ratio;
};

class PfSweep : public ::testing::TestWithParam<PfCase> {};

TEST_P(PfSweep, AllAlgorithmsMatchBruteForce) {
  const SignedGraph graph =
      RandomSignedGraph(15, 60, GetParam().neg_ratio, GetParam().seed);
  const uint32_t expected = BruteForcePolarizationFactor(graph);
  EXPECT_EQ(PolarizationFactorStar(graph).beta, expected) << "PF*";
  PfStarOptions dorder;
  dorder.ordering = PfStarOptions::Ordering::kDegeneracy;
  EXPECT_EQ(PolarizationFactorStar(graph, dorder).beta, expected)
      << "PF*-DOrder";
  EXPECT_EQ(PolarizationFactorBinarySearch(graph).beta, expected) << "PF-BS";
  EXPECT_EQ(PolarizationFactorEnum(graph).beta, expected) << "PF-E";
}

std::vector<PfCase> MakePfSweep() {
  std::vector<PfCase> cases;
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    cases.push_back({seed, 0.45});
    cases.push_back({seed + 50, 0.65});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(RandomGraphs, PfSweep,
                         ::testing::ValuesIn(MakePfSweep()),
                         [](const ::testing::TestParamInfo<PfCase>& pf_info) {
                           return "seed" + std::to_string(pf_info.param.seed);
                         });

// On medium graphs (brute force infeasible) the fast variants must agree.
TEST(PfConsistencyTest, VariantsAgreeOnMediumGraphs) {
  for (uint64_t seed = 1; seed <= 5; ++seed) {
    const SignedGraph graph = RandomSignedGraph(100, 600, 0.4, seed);
    const uint32_t star = PolarizationFactorStar(graph).beta;
    PfStarOptions dorder;
    dorder.ordering = PfStarOptions::Ordering::kDegeneracy;
    EXPECT_EQ(star, PolarizationFactorStar(graph, dorder).beta);
    EXPECT_EQ(star, PolarizationFactorBinarySearch(graph).beta);
  }
}

TEST(PfBsTest, CountsProbes) {
  const PfBsResult result = PolarizationFactorBinarySearch(Figure2Graph());
  EXPECT_GT(result.num_probes, 0u);
  EXPECT_EQ(result.beta, 3u);
}

TEST(PfETest, TimeLimitFlagsTruncation) {
  const SignedGraph graph = RandomSignedGraph(200, 2500, 0.5, 4);
  PfEOptions options;
  options.time_limit_seconds = 0.0;
  const PfEResult result = PolarizationFactorEnum(graph, options);
  EXPECT_TRUE(result.timed_out);
}

}  // namespace
}  // namespace mbc

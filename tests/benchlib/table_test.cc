// Copyright 2026 The balanced-clique Authors.
#include "src/benchlib/table.h"

#include <gtest/gtest.h>

namespace mbc {
namespace {

TEST(TablePrinterTest, AlignsColumns) {
  TablePrinter table({"name", "value"});
  table.AddRow({"a", "1"});
  table.AddRow({"longer-name", "22"});
  const std::string out = table.ToString();
  EXPECT_NE(out.find("name"), std::string::npos);
  EXPECT_NE(out.find("longer-name"), std::string::npos);
  EXPECT_NE(out.find("----"), std::string::npos);
  // All lines except the separator have the same padded layout: the value
  // column starts at a fixed offset.
  const size_t header_pos = out.find("value");
  const size_t row_pos = out.find("22");
  EXPECT_EQ(header_pos % (out.find('\n') + 1), row_pos % (out.find('\n') + 1));
}

TEST(TablePrinterDeathTest, ArityMismatch) {
  TablePrinter table({"one", "two"});
  EXPECT_DEATH(table.AddRow({"only-one"}), "Check failed");
}

TEST(TableFormatTest, Seconds) {
  EXPECT_EQ(TablePrinter::FormatSeconds(0.0000005), "0us");
  EXPECT_EQ(TablePrinter::FormatSeconds(0.0005), "500us");
  EXPECT_EQ(TablePrinter::FormatSeconds(0.25), "250.0ms");
  EXPECT_EQ(TablePrinter::FormatSeconds(2.5), "2.50s");
  EXPECT_EQ(TablePrinter::FormatSeconds(600), "10.0min");
}

TEST(TableFormatTest, CountWithThousandsSeparators) {
  EXPECT_EQ(TablePrinter::FormatCount(0), "0");
  EXPECT_EQ(TablePrinter::FormatCount(999), "999");
  EXPECT_EQ(TablePrinter::FormatCount(1000), "1,000");
  EXPECT_EQ(TablePrinter::FormatCount(123456789), "123,456,789");
}

TEST(TableFormatTest, PercentAndDouble) {
  EXPECT_EQ(TablePrinter::FormatPercent(0.41), "41%");
  EXPECT_EQ(TablePrinter::FormatPercent(-1.0), "-");
  EXPECT_EQ(TablePrinter::FormatDouble(3.14159, 2), "3.14");
}

}  // namespace
}  // namespace mbc

// Copyright 2026 The balanced-clique Authors.
#include "src/benchlib/experiment.h"

#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

namespace mbc {
namespace {

class ExperimentEnvTest : public ::testing::Test {
 protected:
  void SetUp() override {
    // Unique per process: ctest runs each case of this fixture as its own
    // process in parallel, and they must not share (and remove_all) one dir.
    cache_dir_ = ::testing::TempDir() + "/mbc_cache_test_" +
                 std::to_string(static_cast<long>(getpid()));
    std::filesystem::remove_all(cache_dir_);
    setenv("MBC_CACHE_DIR", cache_dir_.c_str(), 1);
    setenv("MBC_DATASETS", "Bitcoin", 1);
    setenv("MBC_SCALE", "1.0", 1);
  }
  void TearDown() override {
    unsetenv("MBC_CACHE_DIR");
    unsetenv("MBC_DATASETS");
    unsetenv("MBC_SCALE");
    std::filesystem::remove_all(cache_dir_);
  }
  std::string cache_dir_;
};

TEST_F(ExperimentEnvTest, FilterSelectsSingleDataset) {
  const std::vector<ExperimentDataset> datasets = LoadExperimentDatasets();
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_EQ(datasets[0].spec.name, "Bitcoin");
  EXPECT_GT(datasets[0].graph.NumEdges(), 0u);
}

TEST_F(ExperimentEnvTest, CacheRoundTripsTheGraph) {
  const std::vector<ExperimentDataset> first = LoadExperimentDatasets();
  ASSERT_EQ(first.size(), 1u);
  // A cache file now exists...
  bool found = false;
  for (const auto& entry :
       std::filesystem::directory_iterator(cache_dir_)) {
    found |= entry.path().extension() == ".mbcg";
  }
  EXPECT_TRUE(found);
  // ...and the second load (cache hit) yields the identical graph.
  const std::vector<ExperimentDataset> second = LoadExperimentDatasets();
  ASSERT_EQ(second.size(), 1u);
  EXPECT_EQ(first[0].graph.NumVertices(), second[0].graph.NumVertices());
  EXPECT_EQ(first[0].graph.NumPositiveEdges(),
            second[0].graph.NumPositiveEdges());
  EXPECT_EQ(first[0].graph.NumNegativeEdges(),
            second[0].graph.NumNegativeEdges());
}

TEST_F(ExperimentEnvTest, DisabledCacheStillLoads) {
  setenv("MBC_CACHE_DIR", "", 1);
  const std::vector<ExperimentDataset> datasets = LoadExperimentDatasets();
  ASSERT_EQ(datasets.size(), 1u);
  EXPECT_GT(datasets[0].graph.NumEdges(), 0u);
}

TEST_F(ExperimentEnvTest, BaselineTimeLimitFromEnv) {
  setenv("MBC_TIME_LIMIT", "2.5", 1);
  EXPECT_DOUBLE_EQ(BaselineTimeLimitSeconds(), 2.5);
  unsetenv("MBC_TIME_LIMIT");
  EXPECT_DOUBLE_EQ(BaselineTimeLimitSeconds(), 5.0);
}

}  // namespace
}  // namespace mbc

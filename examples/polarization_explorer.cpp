// Copyright 2026 The balanced-clique Authors.
//
// Generalized maximum balanced clique exploration (Section V): generate a
// synthetic social network with two planted polarized cores, compute β(G)
// and a maximum balanced clique for every τ in [0, β(G)] with gMBC*, and
// show how the optimum trades size for balance as τ grows — the
// "no-threshold-needed" workflow the paper proposes for end users.
#include <cstdio>

#include "src/datasets/generators.h"
#include "src/gmbc/gmbc.h"
#include "src/polarseeds/metrics.h"

int main() {
  // A power-law community graph with two planted balanced cliques: a big
  // skewed one (3 vs 20) and a smaller well-balanced one (8 vs 8).
  mbc::CommunityGraphOptions options;
  options.num_vertices = 20000;
  options.num_edges = 120000;
  options.num_communities = 10;
  options.negative_ratio = 0.3;
  options.seed = 2026;
  const mbc::SignedGraph base = mbc::GenerateCommunitySignedGraph(options);
  const mbc::SignedGraph graph =
      mbc::PlantBalancedCliques(base, {{3, 20}, {8, 8}}, 7);

  std::printf("social network: %u users, %llu signed ties\n\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  const mbc::GeneralizedMbcResult result = mbc::GeneralizedMbcStar(graph);
  std::printf("polarization factor beta(G) = %u\n", result.beta);
  std::printf("%-4s  %-6s  %-11s  %s\n", "tau", "size", "sides", "polarity");
  for (uint32_t tau = 0; tau <= result.beta; ++tau) {
    const mbc::BalancedClique& clique = result.cliques[tau];
    const mbc::PolarizedCommunity community{clique.left, clique.right};
    std::printf("%-4u  %-6zu  %3zu | %-5zu  %.2f\n", tau, clique.size(),
                clique.left.size(), clique.right.size(),
                mbc::Polarity(graph, community));
  }
  std::printf(
      "\nSmall tau favors sheer size (skewed cliques); tau near beta(G)\n"
      "favors balanced opposition. %zu distinct cliques cover all %u+1\n"
      "thresholds, so a user can simply inspect them all.\n",
      result.NumDistinctCliques(), result.beta);
  return 0;
}

// Copyright 2026 The balanced-clique Authors.
//
// Conflict discovery on a Reddit-style subreddit sentiment network (the
// paper's first motivating application and the Table II case study).
// Vertices are subreddits; a positive edge means friendly cross-posting
// sentiment, a negative edge hostile sentiment. The maximum balanced
// clique exposes the core members of two polarized camps.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/mbc_enum.h"
#include "src/core/mbc_star.h"
#include "src/graph/signed_graph_builder.h"
#include "src/pf/pf_star.h"

namespace {

// A hand-built miniature of the Reddit sentiment graph from the paper's
// Table II: content subreddits interact positively with each other and
// negatively with the drama-observer subreddits (and vice versa), plus
// peripheral communities that are only loosely attached.
const std::vector<std::string> kSubreddits = {
    "videos",           // 0  content camp
    "gaming",           // 1  content camp
    "mma",              // 2  content camp
    "thepopcornstand",  // 3  content camp
    "canada",           // 4  content camp
    "subredditdrama",   // 5  drama camp
    "trueredditdrama",  // 6  drama camp
    "drama",            // 7  drama camp
    "aww",              // 8  peripheral
    "programming",      // 9  peripheral
    "worldnews",        // 10 peripheral
};

mbc::SignedGraph BuildRedditGraph() {
  using mbc::Sign;
  mbc::SignedGraphBuilder builder(
      static_cast<mbc::VertexId>(kSubreddits.size()));
  auto friendly = [&builder](mbc::VertexId a, mbc::VertexId b) {
    builder.AddEdge(a, b, Sign::kPositive);
  };
  auto hostile = [&builder](mbc::VertexId a, mbc::VertexId b) {
    builder.AddEdge(a, b, Sign::kNegative);
  };
  // The content camp is mutually friendly.
  for (mbc::VertexId a = 0; a <= 4; ++a) {
    for (mbc::VertexId b = a + 1; b <= 4; ++b) friendly(a, b);
  }
  // The drama camp is mutually friendly.
  for (mbc::VertexId a = 5; a <= 7; ++a) {
    for (mbc::VertexId b = a + 1; b <= 7; ++b) friendly(a, b);
  }
  // Cross-camp hostility.
  for (mbc::VertexId a = 0; a <= 4; ++a) {
    for (mbc::VertexId b = 5; b <= 7; ++b) hostile(a, b);
  }
  // Peripheral subreddits: mixed, incomplete relations that keep them out
  // of the core conflict.
  friendly(8, 0);
  friendly(8, 4);
  friendly(9, 1);
  hostile(9, 5);
  friendly(10, 4);
  hostile(10, 7);
  hostile(8, 9);
  return std::move(builder).Build();
}

void PrintCamp(const char* label, const std::vector<mbc::VertexId>& side) {
  std::printf("%s:", label);
  for (mbc::VertexId v : side) std::printf(" %s", kSubreddits[v].c_str());
  std::printf("\n");
}

}  // namespace

int main() {
  const mbc::SignedGraph graph = BuildRedditGraph();
  std::printf("subreddit sentiment network: %u vertices, %llu edges\n\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  // Choose τ as the polarization factor — the most polarized setting that
  // still has a solution (the paper's Table II uses τ = β(G) = 3).
  const mbc::PfStarResult pf = mbc::PolarizationFactorStar(graph);
  std::printf("polarization factor beta(G) = %u\n", pf.beta);

  const mbc::MbcStarResult result =
      mbc::MaxBalancedCliqueStar(graph, pf.beta);
  std::printf("dominant conflict (maximum balanced clique, tau=%u):\n",
              pf.beta);
  PrintCamp("  camp L", result.clique.left);
  PrintCamp("  camp R", result.clique.right);

  // Contrast with enumeration: how many maximal conflicts exist?
  uint64_t count = 0;
  mbc::EnumerateMaximalBalancedCliques(
      graph, pf.beta, [&count](const mbc::BalancedClique&) { ++count; });
  std::printf("\n(for reference, MBCEnum reports %llu maximal balanced "
              "cliques at this tau)\n",
              static_cast<unsigned long long>(count));
  return 0;
}

// Copyright 2026 The balanced-clique Authors.
//
// Synonym/antonym group discovery (the paper's Table III case study). The
// WordNet-style adjective graph has positive edges between synonyms and
// negative edges between antonyms; the maximum balanced clique recovers a
// significant synonym group that is antonymous with another.
#include <cstdio>
#include <string>
#include <vector>

#include "src/core/mbc_star.h"
#include "src/graph/signed_graph_builder.h"
#include "src/pf/pf_star.h"

namespace {

const std::vector<std::string> kWords = {
    // The "good" cluster.
    "good", "great", "excellent", "wonderful", "superb", "fantastic",
    // The "bad" cluster.
    "bad", "terrible", "awful", "horrible", "dreadful",
    // Unrelated adjectives.
    "fast", "slow", "bright", "dim",
};

mbc::SignedGraph BuildWordGraph() {
  using mbc::Sign;
  mbc::SignedGraphBuilder builder(
      static_cast<mbc::VertexId>(kWords.size()));
  // Synonyms within each sentiment cluster.
  for (mbc::VertexId a = 0; a <= 5; ++a) {
    for (mbc::VertexId b = a + 1; b <= 5; ++b) {
      builder.AddEdge(a, b, Sign::kPositive);
    }
  }
  for (mbc::VertexId a = 6; a <= 10; ++a) {
    for (mbc::VertexId b = a + 1; b <= 10; ++b) {
      builder.AddEdge(a, b, Sign::kPositive);
    }
  }
  // Antonyms across the clusters.
  for (mbc::VertexId a = 0; a <= 5; ++a) {
    for (mbc::VertexId b = 6; b <= 10; ++b) {
      builder.AddEdge(a, b, Sign::kNegative);
    }
  }
  // fast/slow and bright/dim are antonym pairs of their own, with some
  // synonym links into the clusters but not full membership.
  builder.AddEdge(11, 12, Sign::kNegative);
  builder.AddEdge(13, 14, Sign::kNegative);
  builder.AddEdge(13, 0, Sign::kPositive);  // bright ~ good (loosely)
  builder.AddEdge(14, 6, Sign::kPositive);  // dim ~ bad (loosely)
  return std::move(builder).Build();
}

}  // namespace

int main() {
  const mbc::SignedGraph graph = BuildWordGraph();
  std::printf("adjective graph: %u words, %llu relations\n\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()));

  const mbc::PfStarResult pf = mbc::PolarizationFactorStar(graph);
  std::printf("polarization factor beta(G) = %u\n\n", pf.beta);

  const mbc::MbcStarResult result =
      mbc::MaxBalancedCliqueStar(graph, pf.beta);
  std::printf("largest antonymous synonym groups (tau=%u, %zu words):\n",
              pf.beta, result.clique.size());
  std::printf("  group 1:");
  for (mbc::VertexId v : result.clique.left) {
    std::printf(" %s", kWords[v].c_str());
  }
  std::printf("\n  group 2:");
  for (mbc::VertexId v : result.clique.right) {
    std::printf(" %s", kWords[v].c_str());
  }
  std::printf("\n");
  return 0;
}

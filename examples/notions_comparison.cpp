// Copyright 2026 The balanced-clique Authors.
//
// Comparison of the signed-graph clique notions discussed in the paper's
// Related Work (Section VII) on one synthetic social network:
//   * maximum balanced clique (this paper),
//   * maximum trusted clique (all-positive; Hao et al.),
//   * maximum (α, k)-clique (Li et al.),
//   * a large balanced subgraph (Ordozgoiti et al.; clique-ness dropped),
// plus the whole-graph balance diagnostics. Shows why balanced cliques
// occupy their own niche: trusted cliques ignore opposition entirely,
// (α, k)-cliques ignore the balance structure, and balanced subgraphs are
// not guaranteed to stay balanced when absent edges appear.
#include <cstdio>

#include "src/core/mbc_star.h"
#include "src/datasets/generators.h"
#include "src/graph/balance.h"
#include "src/graph/statistics.h"
#include "src/pf/pf_star.h"
#include "src/related/balanced_subgraph.h"
#include "src/related/related_cliques.h"

int main() {
  mbc::CommunityGraphOptions options;
  options.num_vertices = 4000;
  options.num_edges = 30000;
  options.num_communities = 6;
  options.negative_ratio = 0.35;
  options.seed = 7;
  const mbc::SignedGraph base = mbc::GenerateCommunitySignedGraph(options);
  const mbc::SignedGraph graph =
      mbc::PlantBalancedCliques(base, {{6, 7}}, 3);

  std::printf("network: %u vertices, %llu edges (%.0f%% negative)\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              100.0 * graph.NegativeEdgeRatio());
  const mbc::SignedTriangleCensus census = mbc::CountSignedTriangles(graph);
  std::printf("balance index: %.3f (%llu of %llu triangles balanced)\n",
              census.BalanceIndex(),
              static_cast<unsigned long long>(census.balanced()),
              static_cast<unsigned long long>(census.total()));
  const mbc::BalanceCheck whole = mbc::CheckGraphBalance(graph);
  std::printf("globally balanced: %s\n\n", whole.balanced ? "yes" : "no");

  // 1. Maximum balanced clique (τ = 3).
  const mbc::MbcStarResult balanced = mbc::MaxBalancedCliqueStar(graph, 3);
  std::printf("maximum balanced clique (tau=3):    %zu vertices (%zu|%zu)\n",
              balanced.clique.size(), balanced.clique.left.size(),
              balanced.clique.right.size());

  // 2. Maximum trusted clique (all positive edges).
  const std::vector<mbc::VertexId> trusted = mbc::MaxTrustedClique(graph);
  std::printf("maximum trusted clique:             %zu vertices "
              "(opposition invisible)\n",
              trusted.size());

  // 3. Maximum (α, k)-clique with α = 1, k = 2.
  mbc::AlphaKCliqueOptions ak;
  ak.alpha = 1.0;
  ak.k = 2;
  ak.time_limit_seconds = 30.0;
  const mbc::AlphaKCliqueResult alpha_k = mbc::MaxAlphaKClique(graph, ak);
  std::printf("maximum (1,2)-clique:               %zu vertices "
              "(balance structure ignored)\n",
              alpha_k.clique.size());

  // 4. Large balanced subgraph (no clique requirement).
  const mbc::BalancedSubgraphResult subgraph =
      mbc::LargeBalancedSubgraph(graph, 11);
  std::printf("large balanced subgraph heuristic:  %zu vertices "
              "(not a clique; may unbalance as edges appear)\n\n",
              subgraph.vertices.size());

  std::printf("polarization factor beta(G) = %u\n",
              mbc::PolarizationFactorStar(graph).beta);
  return 0;
}

// Copyright 2026 The balanced-clique Authors.
//
// Quickstart: build a small signed graph, find its maximum balanced clique
// for a threshold τ, compute its polarization factor, and enumerate all
// maximal balanced cliques. Uses the running example of the paper
// (Figure 2): vertices v1..v8 where {v3,v4,v5 | v6,v7,v8} is the maximum
// balanced clique for τ = 2 and β(G) = 3.
#include <cstdio>

#include "src/core/mbc_enum.h"
#include "src/core/mbc_star.h"
#include "src/core/verify.h"
#include "src/graph/graph_io.h"
#include "src/pf/pf_star.h"

int main() {
  // Edge list format: "u v sign" with sign in {1, -1}.
  const char* kEdges = R"(
    0 1 1
    2 3 1
    0 2 -1
    0 3 -1
    1 2 -1
    1 3 -1
    2 4 1
    3 4 1
    5 6 1
    5 7 1
    6 7 1
    2 5 -1
    2 6 -1
    2 7 -1
    3 5 -1
    3 6 -1
    3 7 -1
    4 5 -1
    4 6 -1
    4 7 -1
  )";
  mbc::Result<mbc::SignedGraph> parsed = mbc::ParseSignedEdgeList(kEdges);
  if (!parsed.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 parsed.status().ToString().c_str());
    return 1;
  }
  const mbc::SignedGraph& graph = parsed.value();
  std::printf("graph: %u vertices, %llu edges (%.0f%% negative)\n",
              graph.NumVertices(),
              static_cast<unsigned long long>(graph.NumEdges()),
              100.0 * graph.NegativeEdgeRatio());

  // 1. Maximum balanced clique for τ = 2 (MBC*, Algorithm 2).
  const uint32_t tau = 2;
  const mbc::MbcStarResult result = mbc::MaxBalancedCliqueStar(graph, tau);
  std::printf("maximum balanced clique (tau=%u): %s, size %zu\n", tau,
              result.clique.ToString().c_str(), result.clique.size());
  std::printf("  verified: %s\n",
              mbc::IsBalancedClique(graph, result.clique) ? "yes" : "NO!");

  // 2. Polarization factor (PF*, Algorithm 4).
  const mbc::PfStarResult pf = mbc::PolarizationFactorStar(graph);
  std::printf("polarization factor beta(G) = %u (witness %s)\n", pf.beta,
              pf.witness.ToString().c_str());

  // 3. All maximal balanced cliques for τ = 2 (MBCEnum of [13]).
  std::printf("maximal balanced cliques for tau=%u:\n", tau);
  mbc::EnumerateMaximalBalancedCliques(
      graph, tau, [](const mbc::BalancedClique& clique) {
        std::printf("  %s\n", clique.ToString().c_str());
      });
  return 0;
}
